(** Dynamic partial-order reduction (Flanagan–Godefroid style) with
    persistent/backtrack sets and sleep sets, using footprint disjointness
    as the independence oracle.

    The engine explores a depth-first tree of schedules. At each world it
    initially schedules a *single* thread; whenever a later transition is
    found to depend on an earlier one (their footprints conflict, or both
    are observable — [Mcsys.dependent]), the thread is added to the
    *backtrack set* of the world the earlier transition was taken from,
    forcing the conflicting order to be explored too. *Sleep sets* carry
    already-explored threads forward so that commuting reorderings of the
    same Mazurkiewicz trace are pruned.

    Soundness precondition (see DESIGN.md "Exploration engines"): the
    reduction preserves the set of event traces, abort reachability, and
    race-predictor verdicts when the conflict structure is DRF-style
    acyclic up to the bound — conflicting accesses are either ordered by
    the program or explicitly explored in both orders here. State-space
    *cycles* (spin loops) are cut when a world repeats on the current
    schedule path, exactly as the naive trace enumerator does, so all
    verdicts are sound-up-to-bound; the differential tests in
    [test/test_mc.ml] check engine agreement on the corpus. *)

open Cas_base
module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type cfg = { max_worlds : int; max_depth : int; max_paths : int }

let default_cfg =
  { max_worlds = 200_000; max_depth = 4000; max_paths = 200_000 }

(* ------------------------------------------------------------------ *)
(* Per-thread transition groups                                        *)
(* ------------------------------------------------------------------ *)

(** All transitions of one thread at one world, with the footprint/
    observability summary used for dependence at thread granularity
    (a thread's transitions from a given world are mutually dependent —
    they are alternative next steps of the same sequential core). *)
type 'w group = {
  g_tid : int;
  g_trans : 'w Mcsys.trans list;
  g_fp : Footprint.t;
  g_obs : bool;
}

let group_by_tid (trans : 'w Mcsys.trans list) : 'w group list =
  let tbl : (int, 'w Mcsys.trans list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (t : 'w Mcsys.trans) ->
      match Hashtbl.find_opt tbl t.Mcsys.tid with
      | None ->
        Hashtbl.add tbl t.Mcsys.tid (ref [ t ]);
        order := t.Mcsys.tid :: !order
      | Some r -> r := t :: !r)
    trans;
  List.rev_map
    (fun tid ->
      let ts = List.rev !(Hashtbl.find tbl tid) in
      {
        g_tid = tid;
        g_trans = ts;
        g_fp = Footprint.union_all (List.map (fun t -> t.Mcsys.fp) ts);
        g_obs = List.exists Mcsys.is_obs ts;
      })
    !order

(** Is thread [g]'s next step (at the current world) dependent with the
    executed transition [t]? *)
let dep_group (g : 'w group) (t : 'w Mcsys.trans) =
  g.g_tid = t.Mcsys.tid
  || Footprint.conflict g.g_fp t.Mcsys.fp
  || (g.g_obs && Mcsys.is_obs t)

(* ------------------------------------------------------------------ *)
(* Transition-group memo                                               *)
(* ------------------------------------------------------------------ *)

(** Sleep-set DPOR revisits a state along many schedule prefixes (the
    tree is sized by paths, not states), and every visit re-runs
    [Mcsys.trans] — the semantics — to rebuild the same groups. Groups
    are immutable once built (frames are separate records), so they are
    shared across revisits, keyed by the state fingerprint the visitor
    computed anyway. Sharded like [Store]; bounded by the world
    capacity — past it revisits fall back to stepping. *)
module Gcache = struct
  let shards = 64

  type 'w t = {
    tbls : (string, 'w group list) Hashtbl.t array;
    locks : Mutex.t array;
    count : int Atomic.t;
    capacity : int;
  }

  let create ~capacity () =
    {
      tbls = Array.init shards (fun _ -> Hashtbl.create 64);
      locks = Array.init shards (fun _ -> Mutex.create ());
      count = Atomic.make 0;
      capacity;
    }

  let find_or_add t key compute =
    let i = Hashtbl.hash key land (shards - 1) in
    let tbl = t.tbls.(i) and lock = t.locks.(i) in
    Mutex.lock lock;
    let hit = Hashtbl.find_opt tbl key in
    Mutex.unlock lock;
    match hit with
    | Some gs -> gs
    | None ->
      (* compute outside the lock: a racing duplicate is benign *)
      let gs = compute () in
      if Atomic.get t.count < t.capacity then begin
        Mutex.lock lock;
        if not (Hashtbl.mem tbl key) then begin
          Hashtbl.add tbl key gs;
          Atomic.incr t.count
        end;
        Mutex.unlock lock
      end;
      gs
end

(* ------------------------------------------------------------------ *)
(* Sleep sets                                                          *)
(* ------------------------------------------------------------------ *)

(** A sleeping thread: explored from an earlier sibling branch, skipped
    here unless a dependent transition wakes it (removes it). *)
type slept = { s_tid : int; s_fp : Footprint.t; s_obs : bool }

let slept_of_group g = { s_tid = g.g_tid; s_fp = g.g_fp; s_obs = g.g_obs }

let survives_sleep (s : slept) (t : 'w Mcsys.trans) =
  s.s_tid <> t.Mcsys.tid
  && (not (Footprint.conflict s.s_fp t.Mcsys.fp))
  && not (s.s_obs && Mcsys.is_obs t)

(* ------------------------------------------------------------------ *)
(* DFS frames                                                          *)
(* ------------------------------------------------------------------ *)

(** One world on the current schedule path. [f_backtrack] is mutable: it
    grows while descendants discover dependences (the "dynamic" of DPOR). *)
type frame = {
  f_enabled : ISet.t;
  mutable f_backtrack : ISet.t;
  mutable f_done : ISet.t;
}

type 'w state = {
  sys : 'w Mcsys.t;
  cfg : cfg;
  store : Store.t;
  gcache : 'w Gcache.t;
  recorder : Recorder.t option;
  on_world : 'w -> unit;
  emit : Trace.t -> unit;
  paths : int Atomic.t;
  transitions : int Atomic.t;
  sleeps : int Atomic.t;
  backs : int Atomic.t;
  abort : bool Atomic.t;
  incomplete : bool Atomic.t;
}

(** Explore from world [w]. [path] is the current schedule, newest first:
    each element pairs an executed transition with the frame of the world
    it was taken *from* (DPOR's pre(S, i)). [events] is the reversed
    event trace so far; [sleep] the inherited sleep set. [via] is the
    edge that led here (parent fingerprint and executed transition),
    recorded against this world's fingerprint — which is computed here
    anyway for the store, so recording costs no extra fingerprints. *)
let rec explore (rs : 'w state) ?via path on_path w events sleep depth =
  if Atomic.get rs.paths > rs.cfg.max_paths then
    Atomic.set rs.incomplete true
  else begin
    let wfp = rs.sys.Mcsys.fingerprint w in
    (match Store.add rs.store wfp with
    | `New ->
      (* first admission: record the spanning-tree edge that led here
         (the parent is already recorded — it was admitted, and so
         recorded, before any task could descend through it) *)
      (match (rs.recorder, via) with
      | Some r, Some (parent, (t : 'w Mcsys.trans)) ->
        Recorder.record r ~parent
          {
            Recorder.r_tid = t.Mcsys.tid;
            r_label = t.Mcsys.label;
            r_fp = t.Mcsys.fp;
          }
          ~child:wfp
      | _ -> ());
      rs.on_world w
    | `Seen -> ()
    | `Full -> Atomic.set rs.incomplete true);
    if rs.sys.Mcsys.all_done w then rs.emit (List.rev events, Trace.SDone)
    else if depth >= rs.cfg.max_depth then begin
      Atomic.set rs.incomplete true;
      rescue rs path w;
      rs.emit (List.rev events, Trace.SCut)
    end
    else if SSet.mem wfp on_path then begin
      (* a cycle on the current schedule: the continuation diverges *)
      rescue rs path w;
      rs.emit (List.rev events, Trace.SCut)
    end
    else begin
      let groups =
        Gcache.find_or_add rs.gcache wfp (fun () ->
            group_by_tid (rs.sys.Mcsys.trans w))
      in
      if groups = [] then rs.emit (List.rev events, Trace.SCut)
      else begin
        (* Backtrack-point computation: for each thread pending here, find
           the most recent executed transition of another thread it
           depends on, and request this thread (or, if it was not enabled
           there, every enabled thread — the conservative fallback) at
           the frame that transition was taken from. *)
        List.iter
          (fun g ->
            match
              List.find_opt
                (fun (_, tk) -> tk.Mcsys.tid <> g.g_tid && dep_group g tk)
                path
            with
            | None -> ()
            | Some (f, _) ->
              if
                not
                  (ISet.mem g.g_tid f.f_done || ISet.mem g.g_tid f.f_backtrack)
              then begin
                Atomic.incr rs.backs;
                f.f_backtrack <-
                  (if ISet.mem g.g_tid f.f_enabled then
                     ISet.add g.g_tid f.f_backtrack
                   else ISet.union f.f_backtrack f.f_enabled)
              end)
          groups;
        let sleep_tids =
          List.fold_left (fun s q -> ISet.add q.s_tid s) ISet.empty sleep
        in
        match
          List.filter (fun g -> not (ISet.mem g.g_tid sleep_tids)) groups
        with
        | [] ->
          (* every pending thread is asleep: this schedule is a commuting
             reordering of one already explored — prune the subtree *)
          Atomic.incr rs.sleeps
        | g0 :: _ ->
          let enabled =
            List.fold_left (fun s g -> ISet.add g.g_tid s) ISet.empty groups
          in
          let frame =
            {
              f_enabled = enabled;
              f_backtrack = ISet.singleton g0.g_tid;
              f_done = ISet.empty;
            }
          in
          run_frame rs path on_path wfp events sleep depth frame groups
            sleep_tids
      end
    end
  end

(** Cut rescue. DPOR's soundness argument needs *maximal* executions:
    a thread whose pending transitions never conflict with anything
    executed would otherwise never be scheduled, and cutting a branch at
    a cycle (one thread spinning) or at the depth bound ends it while
    other threads are still enabled — their subtrees would be lost, not
    reduced. So at every cut, each thread still pending is re-enabled at
    the most recent frame where the scheduler could have picked it. *)
and rescue rs path w =
  List.iter
    (fun g ->
      match
        List.find_opt (fun (f, _) -> ISet.mem g.g_tid f.f_enabled) path
      with
      | Some (f, _)
        when not (ISet.mem g.g_tid f.f_done || ISet.mem g.g_tid f.f_backtrack)
        ->
        Atomic.incr rs.backs;
        f.f_backtrack <- ISet.add g.g_tid f.f_backtrack
      | _ -> ())
    (group_by_tid (rs.sys.Mcsys.trans w))

(** The exploration loop at one world: drain the (growing) backtrack set,
    exploring each scheduled thread's transitions and putting explored
    threads to sleep for their younger siblings. *)
and run_frame rs path on_path wfp events sleep depth frame groups sleep_tids =
  let on_path' = SSet.add wfp on_path in
  let explored = ref [] in
  let rec loop () =
    match ISet.min_elt_opt (ISet.diff frame.f_backtrack frame.f_done) with
    | None -> ()
    | Some p ->
      frame.f_done <- ISet.add p frame.f_done;
      if ISet.mem p sleep_tids then begin
        (* requested by a backtrack point but asleep: its subtree here is
           covered by the sibling branch that put it to sleep *)
        Atomic.incr rs.sleeps;
        loop ()
      end
      else begin
        (match List.find_opt (fun g -> g.g_tid = p) groups with
        | None -> () (* a backtracked thread with no pending transition *)
        | Some g ->
          List.iter
            (fun (t : 'w Mcsys.trans) ->
              Atomic.incr rs.transitions;
              Atomic.incr rs.paths;
              match t.Mcsys.target with
              | Mcsys.Abort ->
                Atomic.set rs.abort true;
                rs.emit (List.rev events, Trace.SAbort)
              | Mcsys.Next w' ->
                let sleep' =
                  List.filter
                    (fun s -> survives_sleep s t)
                    (sleep @ List.rev !explored)
                in
                let events' =
                  match t.Mcsys.label with
                  | Mcsys.Levt e -> e :: events
                  | Mcsys.Ltau | Mcsys.Lsw -> events
                in
                explore rs ~via:(wfp, t)
                  ((frame, t) :: path)
                  on_path' w' events' sleep' (depth + 1))
            g.g_trans;
          explored := slept_of_group g :: !explored);
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Run the DPOR engine. [collect] selects trace accumulation (trace
    enumeration) vs. pure reachability; [on_world] is called once per
    distinct world (under a lock when [jobs > 1]).

    With [jobs > 1], the root world's scheduling choices are expanded
    *without* reduction (its persistent set is every enabled thread) and
    each root branch becomes an independent task for the domain pool —
    subtree exploration still reduces normally. This costs a little
    pruning at the root, buys conflict-free parallelism, and keeps
    verdicts deterministic: tasks share only the (thread-safe) canonical
    store and the atomic accounting. *)
let run ?(jobs = 1) ?(collect = true) ?(cfg = default_cfg) ?recorder
    (sys : 'w Mcsys.t) (initials : 'w list) ~(on_world : 'w -> unit) :
    Trace.result * Stats.t =
  let t0 = Unix.gettimeofday () *. 1e9 in
  let store = Store.create ~capacity:cfg.max_worlds () in
  let traces = ref Trace.Set.empty in
  let tlock = Mutex.create () in
  let wlock = Mutex.create () in
  let parallel = jobs > 1 in
  let emit tr =
    if collect then
      if parallel then begin
        Mutex.lock tlock;
        traces := Trace.Set.add tr !traces;
        Mutex.unlock tlock
      end
      else traces := Trace.Set.add tr !traces
  in
  let on_world =
    if parallel then fun w ->
      Mutex.lock wlock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wlock)
        (fun () -> on_world w)
    else on_world
  in
  let root_fp fp =
    match recorder with None -> () | Some r -> Recorder.root r fp
  in
  let rs =
    {
      sys;
      cfg;
      store;
      gcache = Gcache.create ~capacity:cfg.max_worlds ();
      recorder;
      on_world;
      emit;
      paths = Atomic.make 0;
      transitions = Atomic.make 0;
      sleeps = Atomic.make 0;
      backs = Atomic.make 0;
      abort = Atomic.make false;
      incomplete = Atomic.make false;
    }
  in
  if not parallel then
    List.iter
      (fun w0 ->
        root_fp (sys.Mcsys.fingerprint w0);
        explore rs [] SSet.empty w0 [] [] 0)
      initials
  else begin
    (* Root split: one task per (initial, root transition). Each task owns
       a private copy of the root frame with done = enabled, so dynamic
       backtrack requests at the root are no-ops — every root branch is
       already a task. *)
    let tasks =
      List.concat_map
        (fun w0 ->
          let wfp = sys.Mcsys.fingerprint w0 in
          root_fp wfp;
          (match Store.add store wfp with
          | `New -> rs.on_world w0
          | `Seen | `Full -> ());
          if sys.Mcsys.all_done w0 then begin
            emit ([], Trace.SDone);
            []
          end
          else begin
            let groups = group_by_tid (sys.Mcsys.trans w0) in
            if groups = [] then begin
              emit ([], Trace.SCut);
              []
            end
            else begin
              let enabled =
                List.fold_left
                  (fun s g -> ISet.add g.g_tid s)
                  ISet.empty groups
              in
              List.concat_map
                (fun g ->
                  List.map
                    (fun (t : 'w Mcsys.trans) () ->
                      let frame =
                        {
                          f_enabled = enabled;
                          f_backtrack = enabled;
                          f_done = enabled;
                        }
                      in
                      Atomic.incr rs.transitions;
                      Atomic.incr rs.paths;
                      match t.Mcsys.target with
                      | Mcsys.Abort ->
                        Atomic.set rs.abort true;
                        emit ([], Trace.SAbort)
                      | Mcsys.Next w' ->
                        let events =
                          match t.Mcsys.label with
                          | Mcsys.Levt e -> [ e ]
                          | Mcsys.Ltau | Mcsys.Lsw -> []
                        in
                        explore rs ~via:(wfp, t)
                          [ (frame, t) ]
                          (SSet.singleton wfp) w' events [] 1)
                    g.g_trans)
                groups
            end
          end)
        initials
    in
    ignore (Frontier.run ~jobs tasks : unit list)
  end;
  ( { Trace.traces = !traces; complete = not (Atomic.get rs.incomplete) },
    {
      Stats.engine = (if parallel then Fmt.str "dpor-par(%d)" jobs else "dpor");
      worlds = Store.distinct store;
      transitions = Atomic.get rs.transitions;
      sleep_prunings = Atomic.get rs.sleeps;
      backtracks = Atomic.get rs.backs;
      store_hits = Store.hits store;
      truncated = Atomic.get rs.incomplete;
      abort_reachable = Atomic.get rs.abort;
      wall_ns = (Unix.gettimeofday () *. 1e9) -. t0;
    } )
