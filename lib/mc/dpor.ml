(** Dynamic partial-order reduction: *source-DPOR with wakeup
    sequences* (after Abdulla–Aronis–Jonsson–Sagonas, POPL'14), using
    footprint disjointness as the independence oracle, scheduled over
    the work-stealing frontier ([Frontier.run_stealing]).

    The engine explores a tree of schedules. Each tree node is a
    {!frame}: a world plus the schedule that reached it. At a fresh
    frame a *single* thread is scheduled; additional branches appear
    only by *race reversal* — when a pending thread [p]'s next step is
    found dependent with the most recent executed transition [e] of
    another thread, the engine computes the wakeup sequence

      [v = notdep(e, E) · p]

    (the steps executed after [e] that do not happen-after [e],
    followed by [p]'s step — i.e. "the same execution with the race
    reversed") and inserts [v] at the frame [e] was taken from, unless
    some *weak initial* of [v] is already a branch or a sleeping thread
    there — the source-set condition, which is exactly what makes the
    insertion redundant. An inserted branch carries [v] as its *guide*:
    descent replays the guide's threads first, so the branch is steered
    straight to the reversed race instead of wandering into schedules a
    sleep set would later block. Sleep sets still carry explored
    siblings forward ([survives_sleep]), but because insertion is
    source-set-filtered, branches are (on the corpus, gated in
    bench-regress) never spawned into a sleep-set wall: the
    [sleep_prunings] counter — pure waste in the old persistent-set
    engine — is the optimality meter and should read 0.

    Parallelism: every inserted branch is a task for the work-stealing
    frontier. A task descends depth-first on its own domain and pushes
    the branches it creates onto its own deque; dry domains steal
    oldest-first (nearest the root — the largest subtrees). Frames are
    shared across domains and protected by a per-frame mutex; the
    visited-world *set* is interleaving-independent (sleep sets prune
    only redundant transitions, never states — Godefroid — and branch
    insertion is determined by the tree, not the schedule), which the
    determinism tests and CI assert. Per-domain counters are folded at
    join; verdict and witness selection stay deterministic via the
    min-[witness_key] reduction in [Cas_conc.Race].

    Soundness precondition (see DESIGN.md "Exploration engines"): the
    reduction preserves the set of event traces, abort reachability,
    and race-predictor verdicts. State-space *cycles* (spin loops) are
    cut when a world repeats on the current schedule path, exactly as
    the naive trace enumerator does, and every cut re-enables the
    still-pending threads at the most recent frame that could have
    scheduled them ([rescue]) so executions stay maximal; all verdicts
    are sound-up-to-bound, and the differential tests in
    [test/test_mc.ml] plus the fuzz oracle check engine agreement. *)

open Cas_base
module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type cfg = { max_worlds : int; max_depth : int; max_paths : int }

let default_cfg =
  { max_worlds = 200_000; max_depth = 4000; max_paths = 200_000 }

(* ------------------------------------------------------------------ *)
(* Per-thread transition groups                                        *)
(* ------------------------------------------------------------------ *)

(** All transitions of one thread at one world, with the footprint/
    observability summary used for dependence at thread granularity
    (a thread's transitions from a given world are mutually dependent —
    they are alternative next steps of the same sequential core). *)
type 'w group = {
  g_tid : int;
  g_trans : 'w Mcsys.trans list;
  g_fp : Footprint.t;
  g_obs : bool;
}

let group_by_tid (trans : 'w Mcsys.trans list) : 'w group list =
  let tbl : (int, 'w Mcsys.trans list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (t : 'w Mcsys.trans) ->
      match Hashtbl.find_opt tbl t.Mcsys.tid with
      | None ->
        Hashtbl.add tbl t.Mcsys.tid (ref [ t ]);
        order := t.Mcsys.tid :: !order
      | Some r -> r := t :: !r)
    trans;
  List.rev_map
    (fun tid ->
      let ts = List.rev !(Hashtbl.find tbl tid) in
      {
        g_tid = tid;
        g_trans = ts;
        g_fp = Footprint.union_all (List.map (fun t -> t.Mcsys.fp) ts);
        g_obs = List.exists Mcsys.is_obs ts;
      })
    !order

(** Is thread [g]'s next step (at the current world) dependent with the
    executed transition [t]? *)
let dep_group (g : 'w group) (t : 'w Mcsys.trans) =
  g.g_tid = t.Mcsys.tid
  || Footprint.conflict g.g_fp t.Mcsys.fp
  || (g.g_obs && Mcsys.is_obs t)

(* ------------------------------------------------------------------ *)
(* Transition-group memo                                               *)
(* ------------------------------------------------------------------ *)

(** DPOR revisits a state along many schedule prefixes (the tree is
    sized by paths, not states), and every visit re-runs [Mcsys.trans]
    — the semantics — to rebuild the same groups. Groups are immutable
    once built (frames are separate records), so they are shared across
    revisits, keyed by the state fingerprint the visitor computed
    anyway. Sharded like [Store]; bounded by the world capacity — past
    it revisits fall back to stepping. *)
module Gcache = struct
  let shards = 64

  type 'w t = {
    tbls : (string, 'w group list) Hashtbl.t array;
    locks : Mutex.t array;
    count : int Atomic.t;
    capacity : int;
  }

  let create ~capacity () =
    {
      tbls = Array.init shards (fun _ -> Hashtbl.create 64);
      locks = Array.init shards (fun _ -> Mutex.create ());
      count = Atomic.make 0;
      capacity;
    }

  let find_or_add t key compute =
    let i = Hashtbl.hash key land (shards - 1) in
    let tbl = t.tbls.(i) and lock = t.locks.(i) in
    Mutex.lock lock;
    let hit = Hashtbl.find_opt tbl key in
    Mutex.unlock lock;
    match hit with
    | Some gs -> gs
    | None ->
      (* compute outside the lock: a racing duplicate is benign *)
      let gs = compute () in
      if Atomic.get t.count < t.capacity then begin
        Mutex.lock lock;
        if not (Hashtbl.mem tbl key) then begin
          Hashtbl.add tbl key gs;
          Atomic.incr t.count
        end;
        Mutex.unlock lock
      end;
      gs
end

(* ------------------------------------------------------------------ *)
(* Sleep sets                                                          *)
(* ------------------------------------------------------------------ *)

(** A sleeping thread: explored from an earlier sibling branch, skipped
    here unless a dependent transition wakes it (removes it). *)
type slept = { s_tid : int; s_fp : Footprint.t; s_obs : bool }

let slept_of_group g = { s_tid = g.g_tid; s_fp = g.g_fp; s_obs = g.g_obs }

let survives_sleep (s : slept) (t : 'w Mcsys.trans) =
  s.s_tid <> t.Mcsys.tid
  && (not (Footprint.conflict s.s_fp t.Mcsys.fp))
  && not (s.s_obs && Mcsys.is_obs t)

(* ------------------------------------------------------------------ *)
(* Wakeup sequences                                                    *)
(* ------------------------------------------------------------------ *)

(** One step of a wakeup sequence: the thread-granular dependence
    summary of an executed transition (or of a pending group's next
    step, for the final element). *)
type vstep = { v_tid : int; v_fp : Footprint.t; v_obs : bool }

let vstep_of_trans (t : 'w Mcsys.trans) =
  { v_tid = t.Mcsys.tid; v_fp = t.Mcsys.fp; v_obs = Mcsys.is_obs t }

let vstep_of_group (g : 'w group) =
  { v_tid = g.g_tid; v_fp = g.g_fp; v_obs = g.g_obs }

let vdep a b =
  a.v_tid = b.v_tid
  || Footprint.conflict a.v_fp b.v_fp
  || (a.v_obs && b.v_obs)

(* ------------------------------------------------------------------ *)
(* Frames: shared exploration-tree nodes                               *)
(* ------------------------------------------------------------------ *)

(** A branch already spawned at a frame: its first thread (the source
    set grows one thread per insertion) and the sleep summary younger
    siblings inherit. *)
type child = { c_tid : int; c_slept : slept }

(** One node of the exploration tree. Immutable but for [f_children],
    which grows under [f_lock] while descendants — possibly running on
    other domains — discover races that insert wakeup sequences here. *)
type 'w frame = {
  f_fp : string;
  f_groups : 'w group list;
  f_enabled : ISet.t;
  f_path : ('w frame * 'w Mcsys.trans) list;
      (** schedule to here, newest first: each element pairs an executed
          transition with the frame it was taken {e from} (pre(S, i)) *)
  f_events : Event.t list;  (** reversed event trace to here *)
  f_on_path : SSet.t;  (** fingerprints on the path, including this *)
  f_depth : int;
  f_sleep : slept list;  (** sleep set this frame was entered with *)
  f_lock : Mutex.t;
  mutable f_children : child list;  (** newest first; under [f_lock] *)
}

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

(** Per-worker counters, folded into [Stats] at join: stealing domains
    must not fight over counter cachelines on the hot path. Only the
    path budget needs cross-domain visibility, so it alone is flushed
    to a shared atomic, in batches. *)
type wstats = {
  mutable w_trans : int;
  mutable w_pend : int;  (** paths counted but not yet flushed *)
  mutable w_sleeps : int;
  mutable w_backs : int;
}

let flush_batch = 256

type 'w state = {
  sys : 'w Mcsys.t;
  cfg : cfg;
  store : Store.t;
  gcache : 'w Gcache.t;
  recorder : Recorder.t option;
  on_world : 'w -> unit;
  emit : Trace.t -> unit;
  paths : int Atomic.t;  (** flushed path count (budget arbiter) *)
  abort : bool Atomic.t;
  incomplete : bool Atomic.t;
  wstats : wstats array;  (** indexed by [Frontier.id] *)
}

let wstats_of rs wc = rs.wstats.(Frontier.id wc)

let bump_path rs (ws : wstats) =
  ws.w_pend <- ws.w_pend + 1;
  if ws.w_pend >= flush_batch then begin
    ignore (Atomic.fetch_and_add rs.paths ws.w_pend : int);
    ws.w_pend <- 0
  end

let over_budget rs (ws : wstats) =
  if Atomic.get rs.paths + ws.w_pend > rs.cfg.max_paths then begin
    Atomic.set rs.incomplete true;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Source-set coverage                                                 *)
(* ------------------------------------------------------------------ *)

(** Is [q] a weak initial of wakeup sequence [v] at frame [fk]?
    [q ∈ WI(v)] iff [v]'s first step of thread [q] is not preceded in
    [v] by a dependent step (so [v ≃ q·v']), or [q] does not occur in
    [v] at all and its next step at [fk] is independent with every step
    of [v] (so [q] commutes past all of [v]). *)
let weak_initial fk (v : vstep list) q =
  let rec first_of earlier = function
    | [] -> None
    | s :: rest ->
      if s.v_tid = q then Some (s, earlier) else first_of (s :: earlier) rest
  in
  match first_of [] v with
  | Some (s, earlier) -> not (List.exists (fun e -> vdep e s) earlier)
  | None -> (
    match List.find_opt (fun g -> g.g_tid = q) fk.f_groups with
    | None -> false
    | Some gq ->
      let sq = vstep_of_group gq in
      not (List.exists (fun s -> vdep sq s) v))

(* ------------------------------------------------------------------ *)
(* The exploration core                                                *)
(* ------------------------------------------------------------------ *)

(** Spawn a branch at [fk] starting with thread [tid] and guide
    [guide]. Caller holds [fk.f_lock]. The branch's sleep set is the
    frame's inherited sleep plus every older sibling's summary —
    snapshotted now, so later insertions cannot retroactively put this
    branch to sleep. *)
let rec spawn_locked rs fk tid guide wc =
  let ws = wstats_of rs wc in
  ws.w_backs <- ws.w_backs + 1;
  let slept =
    match List.find_opt (fun g -> g.g_tid = tid) fk.f_groups with
    | Some g -> slept_of_group g
    | None -> { s_tid = tid; s_fp = Footprint.empty; s_obs = false }
  in
  let sleep =
    fk.f_sleep @ List.rev_map (fun c -> c.c_slept) fk.f_children
  in
  fk.f_children <- { c_tid = tid; c_slept = slept } :: fk.f_children;
  Frontier.push wc (fun wc' -> branch rs fk tid guide sleep wc')

(** Insert wakeup sequence [v] at frame [fk] unless covered: some weak
    initial of [v] is already a spawned branch or a sleeping thread
    there (the source-set condition — either way the reversal's
    equivalence class is reached through that thread). The conservative
    fallback mirrors the classic algorithm: if [v]'s head is not
    enabled at [fk] (its enabling was itself a consequence of the
    race), schedule every enabled thread not already covered. *)
and insert_wakeup rs fk (v : vstep list) wc =
  match v with
  | [] -> ()
  | hd :: _ ->
    Mutex.lock fk.f_lock;
    let covered q = weak_initial fk v q in
    let blocked =
      List.exists (fun (c : child) -> covered c.c_tid) fk.f_children
      || List.exists (fun (s : slept) -> covered s.s_tid) fk.f_sleep
    in
    if not blocked then begin
      if ISet.mem hd.v_tid fk.f_enabled then
        spawn_locked rs fk hd.v_tid
          (List.map (fun s -> s.v_tid) (List.tl v))
          wc
      else
        ISet.iter
          (fun q ->
            if
              (not
                 (List.exists (fun (c : child) -> c.c_tid = q) fk.f_children))
              && not (List.exists (fun (s : slept) -> s.s_tid = q) fk.f_sleep)
            then spawn_locked rs fk q [] wc)
          fk.f_enabled
    end;
    Mutex.unlock fk.f_lock

(** Race reversal for pending group [g] at [frame]: find the most
    recent executed transition [e] of another thread that [g]'s next
    step depends on, build the wakeup sequence [notdep(e, E)·g], and
    insert it at [e]'s frame. Skipped when [g] happens-after [e]
    through its own earlier steps (program order makes the pair
    race-adjacent only if no such chain exists — reversing a
    happens-before edge is not a race, and inserting it is exactly the
    redundant work the old engine's sleep sets then blocked). *)
and race_reversal rs frame (g : 'w group) wc =
  match
    List.find_opt
      (fun ((_, tk) : 'w frame * 'w Mcsys.trans) ->
        tk.Mcsys.tid <> g.g_tid && dep_group g tk)
      frame.f_path
  with
  | None -> ()
  | Some (fk, tk) ->
    (* transitions executed after [tk], oldest first *)
    let suffix =
      let rec go acc = function
        | ((f', _) as entry) :: rest ->
          if f' == fk then acc else go (entry :: acc) rest
        | [] -> acc
      in
      go [] frame.f_path
    in
    let e = vstep_of_trans tk in
    let after = ref [ e ] in
    let race = ref true in
    let notdep =
      List.filter_map
        (fun ((_, t') : 'w frame * 'w Mcsys.trans) ->
          let s = vstep_of_trans t' in
          if List.exists (fun a -> vdep a s) !after then begin
            after := s :: !after;
            if s.v_tid = g.g_tid then race := false;
            None
          end
          else Some s)
        suffix
    in
    if !race then insert_wakeup rs fk (notdep @ [ vstep_of_group g ]) wc

(** Cut rescue. The soundness argument needs *maximal* executions: a
    thread whose pending transitions never conflict with anything
    executed would otherwise never be scheduled, and cutting a branch
    at a cycle (one thread spinning) or at the depth bound ends it
    while other threads are still enabled — their subtrees would be
    lost, not reduced. So at every cut, each still-pending thread is
    re-enabled at the most recent frame that could have scheduled it
    (unless already a branch or asleep there — asleep means an older
    sibling explored it, and maximality flows through that subtree). *)
and rescue rs path w wc =
  List.iter
    (fun g ->
      match
        List.find_opt
          (fun ((f, _) : 'w frame * 'w Mcsys.trans) ->
            ISet.mem g.g_tid f.f_enabled)
          path
      with
      | None -> ()
      | Some (f, _) ->
        (* a rescue is a wakeup insertion of the singleton ⟨g⟩: it gets
           the same source-set coverage filter — some weak initial of
           ⟨g⟩ already a branch or asleep here means the commuting
           class is reached through that thread (being one is how the
           rescued branch would otherwise end sleep-set-blocked) *)
        let v = [ vstep_of_group g ] in
        Mutex.lock f.f_lock;
        let covered q = weak_initial f v q in
        if
          (not (List.exists (fun (c : child) -> covered c.c_tid) f.f_children))
          && not (List.exists (fun (s : slept) -> covered s.s_tid) f.f_sleep)
        then spawn_locked rs f g.g_tid [] wc;
        Mutex.unlock f.f_lock)
    (group_by_tid (rs.sys.Mcsys.trans w))

(** Run one branch: thread [tid]'s transitions out of [frame], guided
    by the rest of the wakeup sequence, sleeping [sleep]. *)
and branch rs frame tid guide sleep wc =
  let ws = wstats_of rs wc in
  if not (over_budget rs ws) then
    match List.find_opt (fun g -> g.g_tid = tid) frame.f_groups with
    | None -> () (* a rescued thread with no pending transition *)
    | Some g ->
      List.iter
        (fun (t : 'w Mcsys.trans) ->
          ws.w_trans <- ws.w_trans + 1;
          bump_path rs ws;
          match t.Mcsys.target with
          | Mcsys.Abort ->
            Atomic.set rs.abort true;
            rs.emit (List.rev frame.f_events, Trace.SAbort)
          | Mcsys.Next w' ->
            let sleep' = List.filter (fun s -> survives_sleep s t) sleep in
            let events' =
              match t.Mcsys.label with
              | Mcsys.Levt e -> e :: frame.f_events
              | Mcsys.Ltau | Mcsys.Lsw -> frame.f_events
            in
            visit rs
              ~via:(frame.f_fp, t)
              ((frame, t) :: frame.f_path)
              frame.f_on_path w' events' sleep'
              (frame.f_depth + 1)
              guide wc)
        g.g_trans

(** Visit world [w] reached over [path] (newest first). [via] is the
    edge that led here (parent fingerprint and executed transition),
    recorded against this world's fingerprint — which is computed here
    anyway for the store, so recording costs no extra fingerprints.
    [guide] is the rest of the wakeup sequence being replayed; an empty
    (or diverged) guide means free exploration: schedule the first
    non-sleeping thread, and let race reversals spawn the rest. *)
and visit rs ?via path on_path w events sleep depth guide wc =
  let ws = wstats_of rs wc in
  if over_budget rs ws then ()
  else begin
    let wfp = rs.sys.Mcsys.fingerprint w in
    (match Store.add rs.store wfp with
    | `New ->
      (* first admission: record the spanning-tree edge that led here
         (the parent is already recorded — it was admitted, and so
         recorded, before any task could descend through it) *)
      (match (rs.recorder, via) with
      | Some r, Some (parent, (t : 'w Mcsys.trans)) ->
        Recorder.record r ~parent
          {
            Recorder.r_tid = t.Mcsys.tid;
            r_label = t.Mcsys.label;
            r_fp = t.Mcsys.fp;
          }
          ~child:wfp
      | _ -> ());
      rs.on_world w
    | `Seen -> ()
    | `Full -> Atomic.set rs.incomplete true);
    if rs.sys.Mcsys.all_done w then rs.emit (List.rev events, Trace.SDone)
    else if depth >= rs.cfg.max_depth then begin
      Atomic.set rs.incomplete true;
      rescue rs path w wc;
      rs.emit (List.rev events, Trace.SCut)
    end
    else if SSet.mem wfp on_path then begin
      (* a cycle on the current schedule: the continuation diverges *)
      rescue rs path w wc;
      rs.emit (List.rev events, Trace.SCut)
    end
    else begin
      let groups =
        Gcache.find_or_add rs.gcache wfp (fun () ->
            group_by_tid (rs.sys.Mcsys.trans w))
      in
      if groups = [] then rs.emit (List.rev events, Trace.SCut)
      else begin
        let enabled =
          List.fold_left (fun s g -> ISet.add g.g_tid s) ISet.empty groups
        in
        let frame =
          {
            f_fp = wfp;
            f_groups = groups;
            f_enabled = enabled;
            f_path = path;
            f_events = events;
            f_on_path = SSet.add wfp on_path;
            f_depth = depth;
            f_sleep = sleep;
            f_lock = Mutex.create ();
            f_children = [];
          }
        in
        (* every pending thread may reverse a race with the history *)
        List.iter (fun g -> race_reversal rs frame g wc) groups;
        let sleep_tids =
          List.fold_left (fun s q -> ISet.add q.s_tid s) ISet.empty sleep
        in
        let first =
          match guide with
          | gt :: grest
            when List.exists (fun g -> g.g_tid = gt) groups
                 && not (ISet.mem gt sleep_tids) ->
            Some (gt, grest)
          | _ -> (
            (* guide done, diverged, or put to sleep by a sibling that
               beat it here: free exploration (guides only steer) *)
            match
              List.find_opt
                (fun g -> not (ISet.mem g.g_tid sleep_tids))
                groups
            with
            | Some g0 -> Some (g0.g_tid, [])
            | None -> None)
        in
        match first with
        | None ->
          (* every pending thread is asleep: this schedule is a
             commuting reordering of one already explored. Source-set
             filtered insertion should never steer exploration here —
             this counter staying 0 is the optimality gate. *)
          ws.w_sleeps <- ws.w_sleeps + 1
        | Some (tid, grest) ->
          (* the first branch needs no lock: the frame becomes visible
             to other tasks only once we descend through it *)
          let slept =
            match List.find_opt (fun g -> g.g_tid = tid) frame.f_groups with
            | Some g -> slept_of_group g
            | None -> assert false
          in
          frame.f_children <- [ { c_tid = tid; c_slept = slept } ];
          branch rs frame tid grest sleep wc
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Distinct threads enabled at the roots: parallel exploration of a
    ≤1-thread system has nothing to reorder, so [run] short-circuits it
    to the sequential engine instead of spinning up a pool. *)
let root_width (sys : 'w Mcsys.t) (initials : 'w list) =
  List.fold_left
    (fun s w0 ->
      if sys.Mcsys.all_done w0 then s
      else
        List.fold_left
          (fun s g -> ISet.add g.g_tid s)
          s
          (group_by_tid (sys.Mcsys.trans w0)))
    ISet.empty initials
  |> ISet.cardinal

(** Run the DPOR engine. [collect] selects trace accumulation (trace
    enumeration) vs. pure reachability; [on_world] is called once per
    distinct world (under a lock when [jobs > 1], so race-predictor
    reductions stay race-free; their verdict must not depend on call
    order — [Cas_conc.Race] reduces by min [witness_key]). *)
let run ?(jobs = 1) ?(collect = true) ?(cfg = default_cfg) ?recorder
    (sys : 'w Mcsys.t) (initials : 'w list) ~(on_world : 'w -> unit) :
    Trace.result * Stats.t =
  let t0 = Unix.gettimeofday () *. 1e9 in
  let jobs = max 1 jobs in
  let jobs = if jobs > 1 && root_width sys initials <= 1 then 1 else jobs in
  let parallel = jobs > 1 in
  let store = Store.create ~shards:64 ~capacity:cfg.max_worlds () in
  let traces = ref Trace.Set.empty in
  let tlock = Mutex.create () in
  let wlock = Mutex.create () in
  let emit tr =
    if collect then
      if parallel then begin
        Mutex.lock tlock;
        traces := Trace.Set.add tr !traces;
        Mutex.unlock tlock
      end
      else traces := Trace.Set.add tr !traces
  in
  let on_world =
    if parallel then fun w ->
      Mutex.lock wlock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wlock)
        (fun () -> on_world w)
    else on_world
  in
  let rs =
    {
      sys;
      cfg;
      store;
      gcache = Gcache.create ~capacity:cfg.max_worlds ();
      recorder;
      on_world;
      emit;
      paths = Atomic.make 0;
      abort = Atomic.make false;
      incomplete = Atomic.make false;
      wstats =
        Array.init jobs (fun _ ->
            { w_trans = 0; w_pend = 0; w_sleeps = 0; w_backs = 0 });
    }
  in
  let roots =
    List.map
      (fun w0 wc ->
        (match rs.recorder with
        | Some r -> Recorder.root r (sys.Mcsys.fingerprint w0)
        | None -> ());
        visit rs [] SSet.empty w0 [] [] 0 [] wc)
      initials
  in
  let steals = Frontier.run_stealing ~jobs roots in
  let fold f = Array.fold_left (fun acc ws -> acc + f ws) 0 rs.wstats in
  ( { Trace.traces = !traces; complete = not (Atomic.get rs.incomplete) },
    {
      Stats.engine = (if parallel then Fmt.str "dpor-par(%d)" jobs else "dpor");
      worlds = Store.distinct store;
      transitions = fold (fun ws -> ws.w_trans);
      sleep_prunings = fold (fun ws -> ws.w_sleeps);
      backtracks = fold (fun ws -> ws.w_backs);
      steals;
      store_hits = Store.hits store;
      truncated = Atomic.get rs.incomplete;
      abort_reachable = Atomic.get rs.abort;
      wall_ns = (Unix.gettimeofday () *. 1e9) -. t0;
    } )
