(** The transition-system interface shared by every model-checking engine
    (naive bounded-exhaustive, DPOR, parallel DPOR).

    It extends the classic fingerprint/steps interface with the two pieces
    of information dynamic partial-order reduction needs:

    - the scheduled *thread* of each transition, and
    - its *footprint* δ = (rs, ws), the read/write sets of Fig. 4.

    The paper's central observation (§2.3) is that steps with disjoint
    footprints commute; [dependent] below is exactly that check, extended
    so that externally observable transitions (events and aborts) never
    commute with each other — reordering them would change the trace. *)

open Cas_base

(** Observable label of a transition: silent, an external event, or a
    scheduler artifact (switch). Mirrors the global messages o ::= τ | e |
    sw of Fig. 7. *)
type label = Ltau | Levt of Event.t | Lsw

type 'w target = Next of 'w | Abort

type 'w trans = {
  tid : int;
      (** thread performing the step; [-1] when the underlying semantics
          does not expose one (such systems are only naive-explorable) *)
  label : label;
  fp : Footprint.t;
  target : 'w target;
}

(** A system is a world type equipped with canonical fingerprints (the
    key of the state store), a termination predicate, and the enabled
    transitions. For DPOR engines the fingerprint must be
    scheduler-independent: two worlds differing only in which thread the
    scheduler happens to hold must collide. *)
type 'w t = {
  fingerprint : 'w -> string;
  all_done : 'w -> bool;
  trans : 'w -> 'w trans list;
}

(** Is the transition externally visible? Events obviously; aborts too,
    since an execution's status (done/abort) is part of its trace. *)
let is_obs (t : 'w trans) =
  match t.label with
  | Levt _ -> true
  | Ltau | Lsw -> ( match t.target with Abort -> true | Next _ -> false)

(** The independence oracle, negated: two transitions are dependent when
    they belong to the same thread, their footprints conflict (one's
    write set meets the other's locations — [Footprint.conflict], §5), or
    both are observable. Independent transitions commute: executing them
    in either order reaches the same world with the same trace, which is
    what licenses DPOR's pruning. *)
let dependent (a : 'w trans) (b : 'w trans) =
  a.tid = b.tid || Footprint.conflict a.fp b.fp || (is_obs a && is_obs b)

let pp_label ppf = function
  | Ltau -> Fmt.string ppf "tau"
  | Levt e -> Event.pp ppf e
  | Lsw -> Fmt.string ppf "sw"

let pp_trans ppf (t : 'w trans) =
  Fmt.pf ppf "T%d:%a%a%s" t.tid pp_label t.label Footprint.pp t.fp
    (match t.target with Abort -> " abort" | Next _ -> "")
