(** Engine statistics, threaded back to every caller of [Cas_mc.Engine]:
    how many distinct worlds were explored, how much the reductions
    pruned, and whether any budget truncated the search (in which case
    verdicts are bounded, as everywhere in this reproduction). *)

type t = {
  engine : string;
  worlds : int;  (** distinct worlds reached (canonical-store misses) *)
  transitions : int;  (** transitions executed *)
  sleep_prunings : int;  (** scheduling choices skipped by sleep sets *)
  backtracks : int;  (** wakeup-sequence insertions by the DPOR core *)
  steals : int;  (** tasks taken from another domain's deque *)
  store_hits : int;  (** canonical-store hits (worlds re-encountered) *)
  truncated : bool;  (** a world/path/depth budget was exhausted *)
  abort_reachable : bool;
  wall_ns : float;  (** wall-clock exploration time *)
}

let zero ~engine =
  {
    engine;
    worlds = 0;
    transitions = 0;
    sleep_prunings = 0;
    backtracks = 0;
    steals = 0;
    store_hits = 0;
    truncated = false;
    abort_reachable = false;
    wall_ns = 0.;
  }

let pp ppf s =
  Fmt.pf ppf "[%s] %d worlds, %d transitions" s.engine s.worlds s.transitions;
  if s.sleep_prunings > 0 then Fmt.pf ppf ", %d sleep-pruned" s.sleep_prunings;
  if s.backtracks > 0 then Fmt.pf ppf ", %d wakeup insertions" s.backtracks;
  if s.steals > 0 then Fmt.pf ppf ", %d steals" s.steals;
  if s.truncated then Fmt.pf ppf " (truncated)";
  if s.abort_reachable then Fmt.pf ppf " (abort reachable)";
  if s.wall_ns > 0. then Fmt.pf ppf " in %.2fms" (s.wall_ns /. 1e6)
