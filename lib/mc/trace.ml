(** Event traces and bounded trace sets (§3.2), shared by every engine.
    Formerly private to [Cas_conc.Explore]; lifted here so the engines can
    produce them for any instantiating semantics (interleaving worlds,
    x86-TSO worlds). *)

open Cas_base

(** Termination status of an enumerated execution: [SDone] — all threads
    finished; [SAbort] — some thread aborted; [SCut] — the execution was
    cut at a cycle or at a budget (a divergent or unfinished schedule). *)
type status = SDone | SAbort | SCut

type t = Event.t list * status

let pp_status ppf = function
  | SDone -> Fmt.string ppf "done"
  | SAbort -> Fmt.string ppf "abort"
  | SCut -> Fmt.string ppf "..."

let pp ppf (es, st) =
  Fmt.pf ppf "[%a]%a" Fmt.(list ~sep:comma Event.pp) es pp_status st

let key (es, st) =
  String.concat ","
    (List.map Event.to_string es
    @ [ (match st with SDone -> "$D" | SAbort -> "$A" | SCut -> "$C") ])

module Set = struct
  module M = Map.Make (String)

  type nonrec t = t M.t

  let empty : t = M.empty
  let add tr s = M.add (key tr) tr s
  let mem tr s = M.mem (key tr) s
  let elements (s : t) = List.map snd (M.bindings s)
  let cardinal = M.cardinal
  let union a b = M.union (fun _ x _ -> Some x) a b
  let subset a b = M.for_all (fun k _ -> M.mem k b) a
  let equal a b = subset a b && subset b a
  let filter f (s : t) = M.filter (fun _ tr -> f tr) s
  let pp ppf s = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) (elements s)
end

type result = {
  traces : Set.t;
  complete : bool;
      (** false if a path/step budget was exhausted anywhere *)
}
