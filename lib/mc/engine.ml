(** Engine selection: the single entry point callers use to explore a
    system or enumerate its traces with a chosen engine.

    - [Naive]: bounded-exhaustive BFS / schedule-tree DFS; the oracle.
    - [Dpor]: footprint-guided dynamic partial-order reduction.
    - [Dpor_par]: the same DPOR core with root branches distributed over
      a pool of OCaml 5 domains ([jobs]).

    DPOR engines require a system whose transitions carry real thread ids
    and footprints and whose fingerprints are scheduler-independent (see
    [Mcsys]); systems adapted from plain successor functions (tid = -1)
    are only naive-explorable. *)

type t = Naive | Dpor | Dpor_par

let to_string = function
  | Naive -> "naive"
  | Dpor -> "dpor"
  | Dpor_par -> "dpor-par"

let of_string = function
  | "naive" -> Ok Naive
  | "dpor" -> Ok Dpor
  | "dpor-par" -> Ok Dpor_par
  | s -> Error (Fmt.str "unknown engine %S (naive|dpor|dpor-par)" s)

let all = [ Naive; Dpor; Dpor_par ]
let pp ppf e = Fmt.string ppf (to_string e)

let resolve_jobs = function
  | Some j -> max 1 j
  | None -> Frontier.default_jobs ()

(** Reachability with the selected engine; [visit] fires once per
    distinct world (hold no assumption on visit order across engines). *)
let reachable ?(engine = Naive) ?jobs ?(max_worlds = 200_000) ?recorder
    (sys : 'w Mcsys.t) (initials : 'w list) ~(visit : 'w -> unit) : Stats.t =
  match engine with
  | Naive -> Naive.reachable ~max_worlds ?recorder sys initials ~visit
  | Dpor ->
    let cfg = { Dpor.default_cfg with Dpor.max_worlds } in
    snd (Dpor.run ~collect:false ~cfg ?recorder sys initials ~on_world:visit)
  | Dpor_par ->
    let cfg = { Dpor.default_cfg with Dpor.max_worlds } in
    snd
      (Dpor.run ~jobs:(resolve_jobs jobs) ~collect:false ~cfg ?recorder sys
         initials ~on_world:visit)

(** Trace enumeration with the selected engine. *)
let traces ?(engine = Naive) ?jobs ?(max_steps = 4000)
    ?(max_paths = 200_000) ?recorder (sys : 'w Mcsys.t)
    (initials : 'w list) : Trace.result * Stats.t =
  match engine with
  | Naive -> Naive.traces ~max_steps ~max_paths sys initials
  | Dpor | Dpor_par ->
    let cfg =
      { Dpor.default_cfg with Dpor.max_depth = max_steps; max_paths }
    in
    let jobs = if engine = Dpor then 1 else resolve_jobs jobs in
    Dpor.run ~jobs ~collect:true ~cfg ?recorder sys initials
      ~on_world:ignore
