(** Parallel frontier scheduler for the exploration engines.

    The domain-pool mechanics moved to [Cas_base.Pool] so the compiler's
    parallel per-module builds share them; this module keeps the
    historical entry points for the engines. *)

let default_jobs = Cas_base.Pool.default_jobs

(** Run every task, returning results in task order. *)
let run ~jobs (tasks : (unit -> 'a) list) : 'a list =
  Cas_base.Pool.run ~jobs tasks

(** Split a list into at most [n] contiguous chunks of near-equal size. *)
let split n l = Cas_base.Pool.split n l
