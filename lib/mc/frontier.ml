(** Parallel frontier schedulers for the exploration engines.

    Two schedulers live here:

    - [run]/[split]: the historical batch entry points (a fixed task
      array drained by a domain pool), still used by the naive BFS
      engine's level-synchronous sharding. Mechanics in [Cas_base.Pool].

    - [run_stealing]: the work-stealing scheduler behind the DPOR
      engine. Each domain owns a {!Cas_base.Deque} (Chase–Lev) of
      exploration tasks. A running task pushes the branches it creates
      onto its own deque (LIFO, so each domain stays depth-first inside
      its subtree); a dry domain steals from victims oldest-first, i.e.
      the task closest to the root — the largest stealable subtree.
      This replaces the root-split frontier whose domains idled once
      their one subtree drained.

    Termination uses a global pending-task count: [push] increments it
    before the task becomes visible, and a worker decrements it only
    after the task has run (and pushed any children), so the count can
    only reach zero when no task is queued or in flight. A task that
    raises aborts the run: the exception is captured, every worker
    bails out, and the first exception is re-raised on the caller. *)

let default_jobs = Cas_base.Pool.default_jobs

(** Run every task, returning results in task order. *)
let run ~jobs (tasks : (unit -> 'a) list) : 'a list =
  Cas_base.Pool.run ~jobs tasks

(** Split a list into at most [n] contiguous chunks of near-equal size. *)
let split n l = Cas_base.Pool.split n l

(** Worker context: a task runs on exactly one worker and uses its
    context to push children ({!push}) and to index per-worker state
    kept by the caller ({!id}). *)
type 'a wctx = {
  w_id : int;
  w_jobs : int;
  w_deques : 'a deq array;
  w_pending : int Atomic.t;
  w_crashed : exn option Atomic.t;
  w_steals : int Atomic.t;
}

and 'a deq = Deq of ('a wctx -> unit) Cas_base.Deque.t [@@unboxed]

let id (w : _ wctx) = w.w_id
let jobs (w : _ wctx) = w.w_jobs

(** Total successful steals across the run so far. *)
let steals (w : _ wctx) = Atomic.get w.w_steals

(** Schedule [task] on the calling worker's own deque. May be called
    from inside a running task; the child becomes visible to thieves
    immediately. *)
let push (w : 'a wctx) (task : 'a wctx -> unit) : unit =
  Atomic.incr w.w_pending;
  let (Deq d) = w.w_deques.(w.w_id) in
  Cas_base.Deque.push d task

let run_task (w : _ wctx) task =
  (try task w
   with e ->
     (* first crash wins; everyone else sees the flag and bails *)
     ignore (Atomic.compare_and_set w.w_crashed None (Some e)));
  Atomic.decr w.w_pending

(** Run [roots] (and transitively everything they [push]) to
    completion; returns the total number of successful steals. [jobs =
    1] runs on the calling domain with a plain LIFO discipline — fully
    deterministic, no atomics contended. Re-raises the first exception
    any task raised. *)
let run_stealing ~jobs (roots : ('a wctx -> unit) list) : int =
  let jobs = max 1 jobs in
  let pending = Atomic.make 0 in
  let crashed = Atomic.make None in
  let steals = Atomic.make 0 in
  let deques =
    Array.init jobs (fun _ -> Deq (Cas_base.Deque.create ~capacity:256 ()))
  in
  let mk_ctx i =
    {
      w_id = i;
      w_jobs = jobs;
      w_deques = deques;
      w_pending = pending;
      w_crashed = crashed;
      w_steals = steals;
    }
  in
  (* seed worker 0 so the oldest root is the first steal target *)
  let w0 = mk_ctx 0 in
  List.iter (fun t -> push w0 t) roots;
  if jobs = 1 then begin
    (* sequential: drain the single deque LIFO; no other domain exists *)
    let (Deq d) = deques.(0) in
    let rec drain () =
      match Cas_base.Deque.pop d with
      | Some task ->
        run_task w0 task;
        (match Atomic.get crashed with Some _ -> () | None -> drain ())
      | None -> ()
    in
    drain ()
  end
  else begin
    let worker i () =
      let w = mk_ctx i in
      let (Deq own) = deques.(i) in
      let rec steal_from k =
        if k >= jobs then None
        else begin
          let v = (i + k) mod jobs in
          let (Deq dv) = deques.(v) in
          match Cas_base.Deque.steal dv with
          | Some t ->
            Atomic.incr steals;
            Some t
          | None -> steal_from (k + 1)
        end
      in
      let rec loop () =
        if Atomic.get crashed <> None then ()
        else
          match Cas_base.Deque.pop own with
          | Some task ->
            run_task w task;
            loop ()
          | None -> (
            match steal_from 1 with
            | Some task ->
              run_task w task;
              loop ()
            | None ->
              if Atomic.get pending = 0 then ()
              else begin
                Domain.cpu_relax ();
                loop ()
              end)
      in
      loop ()
    in
    let doms = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join doms
  end;
  match Atomic.get crashed with
  | Some e -> raise e
  | None -> Atomic.get steals
