(** Schedule recorder: predecessor links threaded through the
    exploration engines so that, once a verdict is reached at some world,
    the schedule that produced it can be reconstructed.

    The recorder maps each world fingerprint to the fingerprint of the
    world it was first reached *from*, together with the transition
    (thread id, label, footprint) that was executed — a spanning tree of
    the explored graph rooted at the initial worlds. Only the first edge
    to a world is kept ([record] is first-writer-wins), and an edge is
    only accepted when its parent is already in the tree, so parent
    chains are well-founded by construction and [path] always
    terminates.

    All operations take the internal lock, so a single recorder can be
    shared by the parallel engines; under [dpor-par] the *tree shape*
    then depends on task interleaving (whichever domain reaches a world
    first wins), but every recorded path is a real schedule of the
    semantics — [Cas_diag.Replay] re-validates it step by step, and
    verdict selection is made deterministic separately
    ([Cas_conc.Race.witness_key]). *)

open Cas_base

type step = { r_tid : int; r_label : Mcsys.label; r_fp : Footprint.t }

type entry = Root | Edge of string * step

type t = { tbl : (string, entry) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 1024; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Declare [fp] an initial world (a root of the spanning tree). *)
let root t fp =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.tbl fp) then Hashtbl.add t.tbl fp Root)

(** Record that [child] was reached from [parent] by [step]. Ignored when
    [child] already has an edge (first wins) or [parent] is unknown (the
    edge would not connect to a root). *)
let record t ~parent (step : step) ~child =
  with_lock t (fun () ->
      if Hashtbl.mem t.tbl parent && not (Hashtbl.mem t.tbl child) then
        Hashtbl.add t.tbl child (Edge (parent, step)))

(** The recorded schedule from a root to [target]: the executed steps in
    order, each paired with the fingerprint of the world it *reaches*.
    [None] if [target] was never recorded. *)
let path t ~target : (step * string) list option =
  with_lock t (fun () ->
      let rec go fp acc =
        match Hashtbl.find_opt t.tbl fp with
        | None -> None
        | Some Root -> Some acc
        | Some (Edge (parent, s)) -> go parent ((s, fp) :: acc)
      in
      go target [])

(** Number of recorded worlds (roots included). *)
let size t = with_lock t (fun () -> Hashtbl.length t.tbl)
