(** The naive bounded-exhaustive engine: breadth-first reachability and
    depth-first trace enumeration over every interleaving. It is the
    slowest engine and the differential-testing oracle for the reduced
    ones — its verdicts define what the DPOR engines must reproduce.

    The sequential paths are ports of the historical
    [Cas_conc.Explore.reachable_gen]/[traces_gen] and preserve their
    visit/enumeration order exactly. *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

(** Breadth-first reachability; [visit] is called once per distinct
    world. With [jobs > 1] the BFS is level-synchronous and sharded: each
    frontier level is split across the domain pool and the sharded store
    arbitrates duplicates ([visit] is then serialized under a lock, and
    visit *order* is not deterministic — verdicts computed from visits
    must be order-insensitive). *)
let reachable ?(jobs = 1) ?(max_worlds = 200_000) ?recorder
    (sys : 'w Mcsys.t) (initials : 'w list) ~(visit : 'w -> unit) : Stats.t =
  let t0 = now_ns () in
  let store = Store.create ~capacity:max_worlds () in
  let transitions = Atomic.make 0 in
  let abort = Atomic.make false in
  (* the frontier carries each world's fingerprint (computed when it was
     admitted to the store) so neither visiting nor edge recording ever
     recomputes one *)
  let expand (w, wfp) =
    (* successors of a visited world, deduplicated through the store *)
    List.filter_map
      (fun (tr : 'w Mcsys.trans) ->
        Atomic.incr transitions;
        match tr.Mcsys.target with
        | Mcsys.Abort ->
          Atomic.set abort true;
          None
        | Mcsys.Next w' ->
          let cfp = sys.Mcsys.fingerprint w' in
          if Store.add store cfp = `New then begin
            (match recorder with
            | None -> ()
            | Some r ->
              Recorder.record r ~parent:wfp
                {
                  Recorder.r_tid = tr.Mcsys.tid;
                  r_label = tr.Mcsys.label;
                  r_fp = tr.Mcsys.fp;
                }
                ~child:cfp);
            Some (w', cfp)
          end
          else None)
      (sys.Mcsys.trans w)
  in
  let root fp =
    match recorder with None -> () | Some r -> Recorder.root r fp
  in
  let admit w =
    let fp = sys.Mcsys.fingerprint w in
    if Store.add store fp = `New then begin
      root fp;
      Some (w, fp)
    end
    else None
  in
  if jobs <= 1 then begin
    let queue = Queue.create () in
    List.iter
      (fun w -> Option.iter (fun p -> Queue.add p queue) (admit w))
      initials;
    while not (Queue.is_empty queue) do
      let ((w, _) as p) = Queue.pop queue in
      visit w;
      List.iter (fun p' -> Queue.add p' queue) (expand p)
    done
  end
  else begin
    let vlock = Mutex.create () in
    let frontier = ref (List.filter_map admit initials) in
    while !frontier <> [] do
      let next =
        Frontier.run ~jobs
          (List.map
             (fun chunk () ->
               List.concat_map
                 (fun ((w, _) as p) ->
                   Mutex.lock vlock;
                   Fun.protect ~finally:(fun () -> Mutex.unlock vlock)
                     (fun () -> visit w);
                   expand p)
                 chunk)
             (Frontier.split jobs !frontier))
      in
      frontier := List.concat next
    done
  end;
  {
    (Stats.zero ~engine:(if jobs <= 1 then "naive" else "naive-par")) with
    Stats.worlds = Store.distinct store;
    transitions = Atomic.get transitions;
    store_hits = Store.hits store;
    truncated = Store.truncated store;
    abort_reachable = Atomic.get abort;
    wall_ns = now_ns () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Trace enumeration                                                   *)
(* ------------------------------------------------------------------ *)

(** Enumerate event traces along cycle-free schedule paths (depth-first,
    cutting when a world repeats on the current path — the continuation
    is a divergent schedule — or when budgets are exhausted). *)
let traces ?(max_steps = 4000) ?(max_paths = 200_000) (sys : 'w Mcsys.t)
    (initials : 'w list) : Trace.result * Stats.t =
  let module SSet = Set.Make (String) in
  let t0 = now_ns () in
  let acc = ref Trace.Set.empty in
  let paths = ref 0 in
  let transitions = ref 0 in
  let abort = ref false in
  let complete = ref true in
  let emit tr = acc := Trace.Set.add tr !acc in
  let rec go w on_path events budget =
    if !paths > max_paths then complete := false
    else if budget = 0 then begin
      complete := false;
      emit (List.rev events, Trace.SCut)
    end
    else if sys.Mcsys.all_done w then emit (List.rev events, Trace.SDone)
    else
      let fp = sys.Mcsys.fingerprint w in
      if SSet.mem fp on_path then emit (List.rev events, Trace.SCut)
      else begin
        let succs = sys.Mcsys.trans w in
        if succs = [] then emit (List.rev events, Trace.SCut)
        else
          List.iter
            (fun (tr : 'w Mcsys.trans) ->
              incr paths;
              incr transitions;
              match tr.Mcsys.target with
              | Mcsys.Abort ->
                abort := true;
                emit (List.rev events, Trace.SAbort)
              | Mcsys.Next w' ->
                let events' =
                  match tr.Mcsys.label with
                  | Mcsys.Levt e -> e :: events
                  | Mcsys.Ltau | Mcsys.Lsw -> events
                in
                go w' (SSet.add fp on_path) events' (budget - 1))
            succs
      end
  in
  List.iter (fun w -> go w SSet.empty [] max_steps) initials;
  ( { Trace.traces = !acc; complete = !complete },
    {
      (Stats.zero ~engine:"naive") with
      Stats.worlds = 0;
      transitions = !transitions;
      truncated = not !complete;
      abort_reachable = !abort;
      wall_ns = now_ns () -. t0;
    } )
