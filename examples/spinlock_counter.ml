(** The running example of the paper (Fig. 10): two threads increment a
    shared counter under a lock.

    - The *source* links a Clight client against the CImp lock
      specification γ_lock (atomic blocks).
    - The *target* links the compiled x86 client against the hand-written
      TTAS spin lock π_lock of Fig. 10(b), whose plain load/store are
      benign races — and runs it on the x86-TSO store-buffer machine.

    The demo walks the whole extended framework (Fig. 3): DRF of the
    source, semantics preservation to x86-SC, the object simulation
    π_lock ≼ᵒ γ_lock, and the strengthened DRF-guarantee (Lem. 16).

    Run with: dune exec examples/spinlock_counter.exe *)

open Cas_langs
open Cas_conc
open Cas_tso

let client_src =
  {|
  int x = 0;
  void inc() {
    int tmp;
    lock();
    tmp = x;
    x = x + 1;
    unlock();
    print(tmp);
  }
|}

let gamma_src =
  {|
  object int L = 1;
  void lock() {
    r := 0;
    while (r == 0) { atomic { r := [L]; [L] := 0; } }
  }
  void unlock() {
    atomic { r := [L]; assert(r == 0); [L] := 1; }
  }
|}

let () =
  let client = Parse.clight client_src in
  let gamma = Parse.cimp gamma_src in

  Fmt.pr "== Source: Clight client + CImp lock spec, preemptive SC ==@.";
  let input =
    {
      Cascompcert.Framework.name = "spinlock-counter";
      clients = [ client ];
      objects = [ gamma ];
      entries = [ "inc"; "inc" ];
    }
  in
  let run = Cascompcert.Framework.check_fig2 input in
  Fmt.pr "%a@.@." Cascompcert.Framework.pp_run run;

  Fmt.pr "== Target: compiled client + TTAS spin lock under x86-TSO ==@.";
  let asm_client = Cas_compiler.Driver.compile client in
  Fmt.pr "π_lock (Fig. 10(b)):@.%a@.@."
    Fmt.(list ~sep:cut Asm.pp_func)
    Locks.pi_lock.Asm.funcs;
  (match Tso.load [ asm_client; Locks.pi_lock ] [ "inc"; "inc" ] with
  | Error e -> Fmt.pr "TSO load error: %a@." World.pp_load_error e
  | Ok w ->
    let tr = Tso.traces ~max_steps:2500 w in
    Fmt.pr "TSO traces (benign races confined to L):@,%a@.@."
      Explore.TraceSet.pp tr.Explore.traces;
    (* the DPOR engine covers the TSO state space in far fewer distinct
       worlds (drains are ordinary footprinted transitions) — but the
       spinning TTAS loop is exactly the cyclic conflict structure the
       DPOR precondition in DESIGN.md warns about: cycle cuts force
       re-exploration, so the saving is in worlds, not wall time *)
    let naive = Tso.explore w ~visit:(fun _ -> ()) in
    let dpor = Tso.explore ~engine:Engine.Dpor w ~visit:(fun _ -> ()) in
    Fmt.pr "state space: %a@.     versus: %a@.@." Cas_mc.Stats.pp naive
      Cas_mc.Stats.pp dpor);

  Fmt.pr "== Object simulation: π_lock ≼ᵒ γ_lock ==@.";
  let sims =
    Objsim.check_object_sim ~pi:Locks.pi_lock ~gamma
      ~entries:[ ("lock", [ 0; 1 ]); ("unlock", [ 0 ]) ]
      ()
  in
  List.iter (fun r -> Fmt.pr "  %a@." Objsim.pp_obj_sim r) sims;

  Fmt.pr "@.== Strengthened DRF-guarantee (Lem. 16) ==@.";
  let g =
    Objsim.check_drf_guarantee ~clients:[ asm_client ] ~pi:Locks.pi_lock
      ~gamma ~entries:[ "inc"; "inc" ] ()
  in
  Fmt.pr "  TSO(client+π_lock) ⊑ SC(client+γ_lock): %a@." Objsim.pp_guarantee g
