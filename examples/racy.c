int x = 0;
void inc() {
  int tmp;
  tmp = x;
  x = tmp + 1;
  print(tmp);
}
