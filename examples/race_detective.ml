(** The race predictor at work (Fig. 9, §5): detect a data race in an
    unsynchronized counter, show the conflicting footprints, fix the
    program with a lock, and demonstrate why Lemma 9 (preemptive ≈
    non-preemptive) needs the DRF hypothesis.

    Run with: dune exec examples/race_detective.exe *)

open Cas_base
open Cas_langs
open Cas_conc

let racy_src =
  {|
  int x = 0;
  void inc() {
    int tmp;
    tmp = x;
    x = tmp + 1;
    print(tmp);
  }
|}

let () =
  Fmt.pr "== A racy counter ==@.%s@." racy_src;
  let racy =
    Lang.prog [ Lang.Mod (Clight.lang, Parse.clight racy_src) ] [ "inc"; "inc" ]
  in
  (match World.load racy ~args:[] with
  | Error e -> Fmt.pr "load error: %a@." World.pp_load_error e
  | Ok w ->
    let r = Race.drf w in
    Fmt.pr "race predictor: %a@.@." Race.pp_drf_report r;
    (* both threads can read 0: the lost update is observable *)
    let tr = Explore.traces Preemptive.steps (Gsem.initials w) in
    Fmt.pr "preemptive traces (note the lost update [print(0), print(0)]):@.%a@.@."
      Explore.TraceSet.pp tr.Explore.traces);

  Fmt.pr "== Fixed with a lock ==@.";
  let fixed =
    Lang.prog
      [
        Lang.Mod
          ( Clight.lang,
            Parse.clight
              {| int x = 0;
                 void inc() {
                   int tmp;
                   lock(); tmp = x; x = tmp + 1; unlock();
                   print(tmp);
                 } |} );
        Lang.Mod (Cimp.lang, Cimp.gamma_lock ());
      ]
      [ "inc"; "inc" ]
  in
  (match World.load fixed ~args:[] with
  | Error e -> Fmt.pr "load error: %a@." World.pp_load_error e
  | Ok w ->
    Fmt.pr "race predictor: %a@." Race.pp_drf_report (Race.drf w);
    Fmt.pr "NPDRF:          %a@.@." Race.pp_drf_report (Race.npdrf w);

    (* same verdict from every engine; DPOR prunes the commuting
       interleavings the footprints prove equivalent (§2.3) *)
    Fmt.pr "== The same check, engine by engine ==@.";
    List.iter
      (fun e ->
        let r = Race.drf ~engine:e ~jobs:2 w in
        match r.Race.engine_stats with
        | Some st ->
          Fmt.pr "%-8s %s: %a@." (Engine.to_string e)
            (if r.Race.drf then "DRF" else "RACE")
            Cas_mc.Stats.pp st
        | None ->
          Fmt.pr "%-8s %s: %a@." (Engine.to_string e)
            (if r.Race.drf then "DRF" else "RACE")
            Explore.pp_stats r.Race.stats)
      Engine.all;
    Fmt.pr "@.");

  Fmt.pr "== Why Lemma 9 needs DRF ==@.";
  (* writer: x=1; x=2 ∥ reader: print(x) *)
  let observer =
    Lang.prog
      [
        Lang.Mod (Clight.lang, Parse.clight {| int x = 0; void writer() { x = 1; x = 2; } |});
        Lang.Mod (Clight.lang, Parse.clight {| int x = 0; void reader() { int r; r = x; print(r); } |});
      ]
      [ "writer"; "reader" ]
  in
  match World.load observer ~args:[] with
  | Error e -> Fmt.pr "load error: %a@." World.pp_load_error e
  | Ok w ->
    let pre = Explore.traces Preemptive.steps (Gsem.initials w) in
    let np = Explore.traces Nonpreemptive.steps (Gsem.initials w) in
    Fmt.pr "preemptive:     %a@." Explore.TraceSet.pp pre.Explore.traces;
    Fmt.pr "non-preemptive: %a@." Explore.TraceSet.pp np.Explore.traces;
    let eq = Refine.equiv pre np in
    Fmt.pr "equivalence: %a  (the racy intermediate x=1 is only visible@."
      Refine.pp_report eq;
    Fmt.pr "preemptively — exactly the gap DRF closes)@."
