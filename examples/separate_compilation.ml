(** Certified separate compilation — the example (2.1) from the paper's
    introduction, end to end through the certified linker. Module f calls
    the external function g with the address of a stack variable; the two
    modules are compiled *independently* into certified object files
    (.cao: code + symbol tables + the digest-chained certificate of every
    pass's footprint-preserving simulation), then linked into an image
    whose whole-program certificate is composed by checking the linking
    lemma's premises (Lem. 6).

    The demo also shows the incremental half of the story — relinking
    with unchanged objects re-certifies from the certificate cache with
    zero checker steps — and the tamper story: flip one byte of an
    object's body or certificate and the linker refuses it.

    Run with: dune exec examples/separate_compilation.exe *)

open Cas_base
open Cas_langs
open Cas_conc

let f_src =
  {|
  // Module S1
  void f() {
    int a;
    int b;
    a = 0;
    b = 0;
    g(&b);
    print(a + b);
  }
|}

let g_src =
  {|
  // Module S2
  void g(int p) {
    *p = 3;
  }
|}

let dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "casc_sep_demo" in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let path name = Filename.concat dir name

let or_die = function
  | Ok v -> v
  | Error e ->
    Fmt.epr "error: %s@." e;
    exit 1

let () =
  Fmt.pr "== Build two certified object files, independently ==@.";
  let build name source =
    let o = or_die (Cas_link.Objfile.build ~name ~source ()) in
    let file = path (name ^ Cas_link.Objfile.extension) in
    Cas_link.Objfile.save o ~file;
    Fmt.pr "  %s: exports [%a], imports [%a]@.    body %s@.    cert %s@." file
      Fmt.(list ~sep:comma Cas_link.Objfile.pp_sym)
      o.Cas_link.Objfile.o_exports
      Fmt.(list ~sep:comma Cas_link.Objfile.pp_sym)
      o.Cas_link.Objfile.o_imports o.Cas_link.Objfile.o_body_digest
      o.Cas_link.Objfile.o_cert.Cas_link.Cert.chain;
    file
  in
  let f_cao = build "f" f_src in
  let g_cao = build "g" g_src in

  Fmt.pr "@.== Link them, composing the certificates (Lem. 6) ==@.";
  let link () =
    or_die
      (Result.map_error
         (Fmt.str "%a" Cas_link.Linker.pp_error)
         (Cas_link.Linker.link_files ~certify:true ~entries:[ "f" ]
            [ f_cao; g_cao ]))
  in
  let out = link () in
  Option.iter
    (fun r -> Fmt.pr "%a@." Cascompcert.Framework.pp_compose r)
    out.Cas_link.Linker.lk_compose;
  Fmt.pr "  %a@." Cas_link.Linker.pp_stats out.Cas_link.Linker.lk_stats;
  let img = out.Cas_link.Linker.lk_image in
  let img_file = path ("prog" ^ Cas_link.Image.extension) in
  Cas_link.Image.save img ~file:img_file;
  Fmt.pr "  image %s@." img.Cas_link.Image.i_digest;

  (* relinking with both objects unchanged: every module verdict comes
     back from the certificate cache, zero checker steps — the paper's
     per-module proof reuse, executable *)
  Fmt.pr "@.== Relink, incrementally ==@.";
  let again = link () in
  Fmt.pr "  %a@." Cas_link.Linker.pp_stats again.Cas_link.Linker.lk_stats;
  assert (
    Cas_link.Image.(again.Cas_link.Linker.lk_image.i_digest = img.i_digest));
  Fmt.pr "  (same image digest; link order is canonical, objects cached)@.";

  Fmt.pr "@.== Run the linked image ==@.";
  (match World.load (Cas_link.Image.to_prog img) ~args:[] with
  | Error e -> Fmt.pr "  load error %a@." World.pp_load_error e
  | Ok w ->
    let tr = Explore.traces Preemptive.steps [ w ] in
    Fmt.pr "  observable traces: %a@." Explore.TraceSet.pp tr.Explore.traces);

  Fmt.pr "@.== Tampering is detected ==@.";
  let tamper name tweak =
    let s =
      let ic = open_in_bin f_cao in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Cas_link.Objfile.of_string (tweak s) with
    | Ok _ -> Fmt.pr "  %s: NOT detected (bug!)@." name
    | Error e -> Fmt.pr "  %s rejected:@.    %s@." name e
  in
  (* naive first-occurrence substring replace *)
  let replace_once ~sub ~by s =
    let ls = String.length s and lsub = String.length sub in
    let rec find i =
      if i + lsub > ls then None
      else if String.sub s i lsub = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + lsub) (ls - i - lsub)
  in
  tamper "flipped byte in the code body"
    (replace_once ~sub:"\"arity\": 1" ~by:"\"arity\": 2");
  tamper "flipped verdict in the certificate"
    (replace_once ~sub:"\"tag\": \"ok\"" ~by:"\"tag\": \"no\"");

  (* the §2.2 trap still holds at the source level: a 'compiler' that
     caches a shared global across an external call is rejected by the
     module-local simulation (the callee may write it — the Rely) *)
  Fmt.pr "@.== A bad compiler is rejected ==@.";
  let src_h =
    Parse.clight
      {| int shared = 0;
       void h() { int a; int b; a = shared; k(); b = shared; print(a + b); } |}
  in
  let bad_h =
    Parse.clight
      {| int shared = 0;
       void h() { int a; int b; a = shared; k(); b = a; print(a + b); } |}
  in
  let env i =
    {
      Cascompcert.Simulation.ret = Value.Vint 0;
      perturb = Some ("shared", 0, 9 + i);
    }
  in
  let o =
    Cascompcert.Simulation.check ~src:(Clight.lang, src_h)
      ~tgt:(Clight.lang, bad_h) ~entry:"h" ~args:[] ~env ()
  in
  Fmt.pr "  caching a global across a call: %a@."
    Cascompcert.Simulation.pp_outcome o
