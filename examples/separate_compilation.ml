(** Separate compilation and cross-language linking — the example (2.1)
    from the paper's introduction. Module f calls the external function g
    with the address of a stack variable; the two modules are compiled
    *independently* and linked at the target.

    The demo also shows what Compositional CompCert's example warns
    about: the compiler of f may not assume that b is still 0 when g
    returns — our simulation checker rejects a 'compiler' that caches b
    across the call.

    Run with: dune exec examples/separate_compilation.exe *)

open Cas_base
open Cas_langs
open Cas_conc

let f_src =
  {|
  // Module S1
  void f() {
    int a;
    int b;
    a = 0;
    b = 0;
    g(&b);
    print(a + b);
  }
|}

let g_src =
  {|
  // Module S2
  void g(int p) {
    *p = 3;
  }
|}

let () =
  let m_f = Parse.clight f_src in
  let m_g = Parse.clight g_src in

  Fmt.pr "== Compile the two modules independently ==@.";
  let asm_f = Cas_compiler.Driver.compile m_f in
  let asm_g = Cas_compiler.Driver.compile m_g in

  (* certified separate compilation, content-addressed: each unit's pass
     outputs and simulation verdicts are memoized under H(pipeline
     version, options, source unit, pass) — recompiling an unchanged
     module is pure cache hits, and touching one module invalidates only
     its own certificates *)
  Fmt.pr "== The certificate cache ==@.";
  let count_cache (c : Cas_compiler.Driver.compiled) =
    List.fold_left
      (fun (h, m) st ->
        match st.Cas_compiler.Driver.st_cache with
        | `Hit -> (h + 1, m)
        | `Miss -> (h, m + 1)
        | `Off -> (h, m))
      (0, 0) c.Cas_compiler.Driver.c_stats
  in
  let show name cs =
    List.iteri
      (fun i c ->
        let h, m = count_cache c in
        Fmt.pr "  %s, module %d: %d hits / %d misses, asm hash %s@." name i h
          m
          (String.sub c.Cas_compiler.Driver.c_asm_digest 0 12))
      cs
  in
  show "cold build " (Cas_compiler.Driver.compile_all [ m_f; m_g ]);
  show "rebuild    " (Cas_compiler.Driver.compile_all [ m_f; m_g ]);
  let m_g' =
    Parse.clight {|
  // Module S2, edited
  void g(int p) {
    *p = 4;
  }
|}
  in
  show "touch g    " (Cas_compiler.Driver.compile_all [ m_f; m_g' ]);
  Fmt.pr "  (only the edited module misses: f's certificates are reused)@.@.";
  Fmt.pr "compiled f:@.%a@.@." Fmt.(list ~sep:cut Asm.pp_func) asm_f.Asm.funcs;
  Fmt.pr "compiled g:@.%a@.@." Fmt.(list ~sep:cut Asm.pp_func) asm_g.Asm.funcs;

  Fmt.pr "== Link and run: all four combinations ==@.";
  let run name mods =
    match World.load (Lang.prog mods [ "f" ]) ~args:[] with
    | Error e -> Fmt.pr "%-22s: load error %a@." name World.pp_load_error e
    | Ok w ->
      let tr = Explore.traces Preemptive.steps [ w ] in
      Fmt.pr "%-22s: %a@." name Explore.TraceSet.pp tr.Explore.traces
  in
  run "source f + source g"
    [ Lang.Mod (Clight.lang, m_f); Lang.Mod (Clight.lang, m_g) ];
  run "target f + source g"
    [ Lang.Mod (Asm.lang, asm_f); Lang.Mod (Clight.lang, m_g) ];
  run "source f + target g"
    [ Lang.Mod (Clight.lang, m_f); Lang.Mod (Asm.lang, asm_g) ];
  run "target f + target g"
    [ Lang.Mod (Asm.lang, asm_f); Lang.Mod (Asm.lang, asm_g) ];

  Fmt.pr "@.== Module-local simulations (Def. 2) ==@.";
  let sim name src tgt entry args =
    let o = Cascompcert.Simulation.check ~src ~tgt ~entry ~args () in
    Fmt.pr "  %-3s: %a@." name Cascompcert.Simulation.pp_outcome o
  in
  sim "f" (Clight.lang, m_f) (Asm.lang, asm_f) "f" [];
  (* g's pointer argument: hand it the address of a fresh scratch global
     by driving it via the whole-program run above; here we drive it with
     an integer-shaped run instead *)
  Fmt.pr "  (g is exercised through the linked runs above)@.";

  Fmt.pr "@.== A bad compiler is rejected ==@.";
  (* 'optimizes' f by assuming b == 0 after the call — the §2.2 trap.
     Note: b is stack-allocated and its pointer escapes to another module,
     which the paper's module-local simulation excludes (footnote 6:
     cross-module stack-pointer escape is out of scope). So the
     *module-local* checker cannot see this bug — but the *whole-program*
     refinement does. *)
  let bad_f =
    Parse.clight
      {|
      void f() {
        int a;
        int b;
        a = 0;
        b = 0;
        g(&b);
        print(0);   // "optimized" a + b assuming b is still 0
      }
    |}
  in
  let linked m = [ Lang.Mod (Clight.lang, m); Lang.Mod (Clight.lang, m_g) ] in
  let traces m =
    match World.load (Lang.prog (linked m) [ "f" ]) ~args:[] with
    | Error _ -> { Explore.traces = Explore.TraceSet.empty; complete = false }
    | Ok w -> Explore.traces Preemptive.steps [ w ]
  in
  let r = Refine.refines ~lhs:(traces bad_f) ~rhs:(traces m_f) in
  Fmt.pr "  linked bad_f + g ⊑ linked f + g: %a@." Refine.pp_report r;
  (* For *shared globals*, the module-local checker does reject caching:
     the callee may write the global during the call (Rely). *)
  let src_g = Parse.clight
    {| int shared = 0;
       void h() { int a; int b; a = shared; k(); b = shared; print(a + b); } |}
  in
  let bad_g = Parse.clight
    {| int shared = 0;
       void h() { int a; int b; a = shared; k(); b = a; print(a + b); } |}
  in
  let env i =
    { Cascompcert.Simulation.ret = Value.Vint 0; perturb = Some ("shared", 0, 9 + i) }
  in
  let o =
    Cascompcert.Simulation.check ~src:(Clight.lang, src_g)
      ~tgt:(Clight.lang, bad_g) ~entry:"h" ~args:[] ~env ()
  in
  Fmt.pr "  caching a *global* across a call: %a@."
    Cascompcert.Simulation.pp_outcome o
