(** Shared corpus of source programs used across the test suites and the
    benchmark harness. Client modules are written in the mini-C surface
    syntax and parsed; object modules in CImp. *)

open Cas_langs

let parse_c = Parse.clight
let parse_cimp = Parse.cimp

(* ------------------------------------------------------------------ *)
(* Client modules                                                      *)
(* ------------------------------------------------------------------ *)

(** Fig. 10(c): lock-protected counter with an observable print. *)
let counter_src =
  {|
  int x = 0;
  void inc() {
    int tmp;
    lock();
    tmp = x;
    x = x + 1;
    unlock();
    print(tmp);
  }
|}

let counter () = parse_c counter_src

(** Example (2.1) of the paper: f calls the external g with the address of
    a stack variable. *)
let cross_module_f_src =
  {|
  void f() {
    int a;
    int b;
    a = 0;
    b = 0;
    g(&b);
    print(a + b);
  }
|}

let cross_module_g_src =
  {|
  void g(int p) {
    *p = 3;
  }
|}

let cross_module_f () = parse_c cross_module_f_src
let cross_module_g () = parse_c cross_module_g_src

(** Unsynchronized racy counter — the negative example for DRF. *)
let racy_counter_src =
  {|
  int x = 0;
  void inc() {
    int tmp;
    tmp = x;
    x = tmp + 1;
    print(tmp);
  }
|}

let racy_counter () = parse_c racy_counter_src

(** Racy two-stores vs. reader: preemptive and non-preemptive semantics
    produce different trace sets (the reader can observe the intermediate
    value 1 only under preemption) — the counterexample showing Lem. 9
    really needs DRF. *)
let racy_observer_writer_src =
  {|
  int x = 0;
  void writer() {
    x = 1;
    x = 2;
  }
|}

let racy_observer_reader_src =
  {|
  int x = 0;
  void reader() {
    int r;
    r = x;
    print(r);
  }
|}

let racy_writer () = parse_c racy_observer_writer_src
let racy_reader () = parse_c racy_observer_reader_src

(** Recursion through the interaction semantics: naive Fibonacci. *)
let fib_src =
  {|
  int fib(int n) {
    int a;
    int b;
    if (n < 2) { return n; }
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
  }
  void main() {
    int r;
    r = fib(7);
    print(r);
  }
|}

let fib () = parse_c fib_src

(** Loops, arrays and pointer arithmetic: sum of an array. *)
let array_sum_src =
  {|
  int total = 0;
  void main() {
    int a[5];
    int i;
    int s;
    i = 0;
    while (i < 5) {
      a[i] = i * i;
      i = i + 1;
    }
    s = 0;
    i = 0;
    while (i < 5) {
      s = s + a[i];
      i = i + 1;
    }
    total = s;
    print(s);
  }
|}

let array_sum () = parse_c array_sum_src

(** Tail call: the Tailcall pass applies to [even]/[odd]. *)
let mutual_tailcall_src =
  {|
  int even(int n) {
    if (n == 0) { return 1; }
    return odd(n - 1);
  }
  int odd(int n) {
    if (n == 0) { return 0; }
    return even(n - 1);
  }
  void main() {
    int r;
    r = even(10);
    print(r);
  }
|}

let mutual_tailcall () = parse_c mutual_tailcall_src

(** Constant folding and CSE fodder. *)
let const_cse_src =
  {|
  int g = 0;
  void main() {
    int a;
    int b;
    int c;
    a = 3 * 4 + 2;
    b = a * 2 + a * 2;
    c = (a * 2) - (a * 2);
    g = b + c;
    print(g);
  }
|}

let const_cse () = parse_c const_cse_src

(** Register pressure: more simultaneously-live values than allocatable
    registers, forcing spills. *)
let spill_src =
  {|
  void main() {
    int a; int b; int c; int d; int e; int f; int h; int i;
    a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; h = 7; i = 8;
    print(a + b + c + d + e + f + h + i);
    print(a * b - c * d + e * f - h * i);
  }
|}

let spill () = parse_c spill_src

(** Producer/consumer over a lock-protected one-slot mailbox. *)
let producer_consumer_src =
  {|
  int box = 0;
  int full = 0;
  void producer() {
    int done_;
    int i;
    i = 1;
    while (i <= 2) {
      done_ = 0;
      while (done_ == 0) {
        lock();
        if (full == 0) {
          box = i * 10;
          full = 1;
          done_ = 1;
        }
        unlock();
      }
      i = i + 1;
    }
  }
  void consumer() {
    int got;
    int i;
    i = 1;
    while (i <= 2) {
      got = 0 - 1;
      while (got < 0) {
        lock();
        if (full == 1) {
          got = box;
          full = 0;
        }
        unlock();
      }
      print(got);
      i = i + 1;
    }
  }
|}

let producer_consumer () = parse_c producer_consumer_src

(* ------------------------------------------------------------------ *)
(* Object modules                                                      *)
(* ------------------------------------------------------------------ *)

(** γ_lock, Fig. 10(a), in concrete CImp syntax. *)
let gamma_lock_src =
  {|
  object int L = 1;
  void lock() {
    r := 0;
    while (r == 0) { atomic { r := [L]; [L] := 0; } }
  }
  void unlock() {
    atomic { r := [L]; assert(r == 0); [L] := 1; }
  }
|}

let gamma_lock () = parse_cimp gamma_lock_src

(** An atomic counter object: a concurrent object that is not a lock,
    exercising the "more general cases" of §2.4 (γ_o as an atomic abstract
    object). *)
let gamma_counter_src =
  {|
  object int CNT = 0;
  int fetch_add() {
    atomic { r := [CNT]; [CNT] := r + 1; }
    return r;
  }
|}

let gamma_counter () = parse_cimp gamma_counter_src

(* ------------------------------------------------------------------ *)
(* Assembled whole programs                                            *)
(* ------------------------------------------------------------------ *)

let lock_counter_prog () : Cas_base.Lang.prog =
  Cas_base.Lang.prog
    [
      Cas_base.Lang.Mod (Clight.lang, counter ());
      Cas_base.Lang.Mod (Cimp.lang, gamma_lock ());
    ]
    [ "inc"; "inc" ]

let racy_prog () : Cas_base.Lang.prog =
  Cas_base.Lang.prog
    [ Cas_base.Lang.Mod (Clight.lang, racy_counter ()) ]
    [ "inc"; "inc" ]

let observer_prog () : Cas_base.Lang.prog =
  Cas_base.Lang.prog
    [
      Cas_base.Lang.Mod (Clight.lang, racy_writer ());
      Cas_base.Lang.Mod (Clight.lang, racy_reader ());
    ]
    [ "writer"; "reader" ]

(** A small multi-module program with disjoint symbol tables, for the
    certified-linker benchmarks: [f] calls across into [g] (the paper's
    §2.1 pair), and two self-contained modules pad the link so per-module
    re-verification has enough tasks for [--jobs] to matter. *)
let link_module_srcs : (string * string) list =
  [
    ("f", cross_module_f_src);
    ("g", cross_module_g_src);
    ( "tri",
      {|
      int tri(int n) {
        int s;
        int i;
        s = 0;
        i = 0;
        while (i < n) { i = i + 1; s = s + i; }
        return s;
      }
      void h() {
        int r;
        r = tri(6);
        print(r);
      }
|}
    );
    ( "powers",
      {|
      int sq(int n) { return n * n; }
      int cube(int n) {
        int s;
        s = sq(n);
        return n * s;
      }
      void k() {
        int a;
        int b;
        a = cube(3);
        b = sq(3);
        print(a - b);
      }
|}
    );
  ]

(** Every single-threaded client with its entry, for pass-simulation and
    pipeline sweeps. *)
let sequential_clients () : (string * Clight.program * string list) list =
  [
    ("counter", counter (), [ "inc" ]);
    ("fib", fib (), [ "main" ]);
    ("array_sum", array_sum (), [ "main" ]);
    ("mutual_tailcall", mutual_tailcall (), [ "main" ]);
    ("const_cse", const_cse (), [ "main" ]);
    ("spill", spill (), [ "main" ]);
    ("producer_consumer", producer_consumer (), [ "producer"; "consumer" ]);
    ("cross_module_f", cross_module_f (), [ "f" ]);
    ("cross_module_g", cross_module_g (), [ "g" ]);
  ]

(** Concurrent DRF programs for framework sweeps (name, input). *)
let framework_inputs () : Cascompcert.Framework.input list =
  [
    {
      Cascompcert.Framework.name = "lock-counter";
      clients = [ counter () ];
      objects = [ gamma_lock () ];
      entries = [ "inc"; "inc" ];
    };
    {
      Cascompcert.Framework.name = "producer-consumer";
      clients = [ producer_consumer () ];
      objects = [ gamma_lock () ];
      entries = [ "producer"; "consumer" ];
    };
    {
      Cascompcert.Framework.name = "cross-module";
      clients = [ cross_module_f (); cross_module_g () ];
      objects = [];
      entries = [ "f" ];
    };
    {
      Cascompcert.Framework.name = "fib";
      clients = [ fib () ];
      objects = [];
      entries = [ "main" ];
    };
  ]
