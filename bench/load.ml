(** Load driver for the cascd bench: many concurrent clients with
    Zipf-distributed module reuse hammering one [Cas_serve] daemon.

    Everything is deterministic — a hand-rolled LCG per client, seeded
    by the client index — so two runs issue the same request streams.
    The Zipf skew is the realistic shape for a build farm's traffic:
    a few hot modules (the common headers everyone rebuilds against)
    dominate, with a long tail of cold ones, which is exactly the mix
    that exercises both the dedup window and the certificate cache. *)

(* ------------------------------------------------------------------ *)
(* Deterministic randomness                                            *)
(* ------------------------------------------------------------------ *)

(* The LCG and Zipf helpers that used to live here moved to
   [Cas_base.Rng] (the fuzz generator needs the same machinery); these
   aliases keep the driver's call sites readable. *)

type rng = Cas_base.Rng.t

let rng ~seed : rng = Cas_base.Rng.make ~seed
let uniform = Cas_base.Rng.uniform
let zipf_cdf = Cas_base.Rng.zipf_cdf
let sample = Cas_base.Rng.sample

(* ------------------------------------------------------------------ *)
(* Percentiles                                                         *)
(* ------------------------------------------------------------------ *)

(** Exact quantile over the collected sample (no histogram bias here —
    the driver keeps every latency). [q] in (0,1]. *)
let percentile (xs : int array) (q : float) : int =
  if Array.length xs = 0 then 0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let idx =
      max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
    in
    sorted.(idx)
  end

(* ------------------------------------------------------------------ *)
(* The client fleet                                                    *)
(* ------------------------------------------------------------------ *)

type outcome = {
  sent : int;
  ok : int;
  overloaded : int;
  draining : int;
  errors : int;  (** transport failures and [error]-status responses *)
  latencies_us : int array;  (** one entry per request that got any answer *)
  wall_ns : float;  (** fleet start to last client done *)
}

(** Run [clients] concurrent connections, each issuing [requests]
    requests chosen by [kind_of ~client ~request] (which typically
    samples [zipf_cdf]); every client keeps one connection for its whole
    life, like a build daemon's persistent workers would.

    The client threads are spread over a few domains: real clients are
    separate *processes*, so their request encoding and response parsing
    must not time-share the daemon's domain — co-locating every client
    systhread with the connection handlers would benchmark the OCaml
    runtime lock, not the service. *)
let run_clients ~(socket : string) ~(clients : int) ~(requests : int)
    ~(kind_of : client:int -> request:int -> Cas_serve.Protocol.kind) :
    outcome =
  let lock = Mutex.create () in
  let ok = ref 0
  and overloaded = ref 0
  and draining = ref 0
  and errors = ref 0
  and lats = ref [] in
  let client i () =
    match Cas_serve.Client.connect ~socket with
    | Error _ ->
      Mutex.lock lock;
      errors := !errors + requests;
      Mutex.unlock lock
    | Ok c ->
      let record f =
        Mutex.lock lock;
        f ();
        Mutex.unlock lock
      in
      for j = 1 to requests do
        let t0 = Unix.gettimeofday () in
        let r = Cas_serve.Client.request c (kind_of ~client:i ~request:j) in
        let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        record (fun () ->
            match r with
            | Ok { Cas_serve.Protocol.status = Cas_serve.Protocol.Sok; _ } ->
              incr ok;
              lats := us :: !lats
            | Ok { Cas_serve.Protocol.status = Cas_serve.Protocol.Soverloaded; _ }
              ->
              incr overloaded;
              lats := us :: !lats
            | Ok { Cas_serve.Protocol.status = Cas_serve.Protocol.Sdraining; _ }
              ->
              incr draining;
              lats := us :: !lats
            | Ok { Cas_serve.Protocol.status = Cas_serve.Protocol.Serror; _ }
            | Error _ ->
              incr errors)
      done;
      Cas_serve.Client.close c
  in
  let n_domains =
    max 1 (min 4 (min clients (Domain.recommended_domain_count () - 1)))
  in
  let t0 = Unix.gettimeofday () in
  if n_domains <= 1 then begin
    (* single core: a spawned domain would just time-share with this
       one — run the client threads here *)
    let threads =
      List.init clients (fun i -> Thread.create (client i) ())
    in
    List.iter Thread.join threads
  end
  else begin
    let domains =
      List.init n_domains (fun d ->
          Domain.spawn (fun () ->
              let mine =
                List.filter
                  (fun i -> i mod n_domains = d)
                  (List.init clients Fun.id)
              in
              let threads =
                List.map (fun i -> Thread.create (client i) ()) mine
              in
              List.iter Thread.join threads))
    in
    List.iter Domain.join domains
  end;
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  {
    sent = clients * requests;
    ok = !ok;
    overloaded = !overloaded;
    draining = !draining;
    errors = !errors;
    latencies_us = Array.of_list !lats;
    wall_ns;
  }
