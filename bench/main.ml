(** Benchmark harness regenerating the paper's figures and its one table.

    The paper's evaluation is a Coq development, so its reproducible
    artifacts are:

    - Fig. 2 / Fig. 3 — the framework's proof steps, here timed as
      executable checks ([fig2-checks], [fig3-tso]);
    - Fig. 9 — the race predictor ([fig2-checks] includes DRF);
    - Fig. 10 — the lock example, exercised by [fig3-tso];
    - Fig. 11 — the verified compilation passes: we run and time every
      pass, and report per-pass simulation verdicts ([fig11-passes]);
    - Fig. 13 — the lines-of-code table: reproduced with the paper's Coq
      numbers next to this reproduction's OCaml numbers ([fig13-loc]);
    - plus the quantitative phenomenon motivating the whole design: the
      non-preemptive semantics explores dramatically fewer interleavings
      than the preemptive one ([npsem-reduction]), and the TTAS lock's
      benign race against its fenced variant ([lock-ablation]).

    Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Cas_base
open Cas_langs
open Cas_conc
module Corpus = Bench_corpus

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable results                               *)
(* ------------------------------------------------------------------ *)

(* Collected as the sections run, dumped at the end when --json is
   given: every bechamel timing row, and every world count so the
   engine-vs-naive reduction is machine-checkable. *)
let json_benchmarks : (string * int * float) list ref = ref []
let json_worlds : (string * string * int) list ref = ref []

(* per-pass rows of the compile section: (pass, cold ns, warm-run cache
   hits, warm-run cache misses) *)
let json_compile : (string * float * int * int) list ref = ref []

(* diag section: (program, drf ns, capture ns, overhead pct) *)
let json_diag : (string * float * float * float) list ref = ref []

(* diag section: (program, orig steps, min steps, orig switches,
   min switches, attempts) *)
let json_shrink : (string * int * int * int * int * int) list ref = ref []

(* link section: (case, ns, verdicts, cached verdicts, checker steps) *)
let json_link : (string * float * int * int * int) list ref = ref []

(* recert section: (case, ns, verdicts, cached verdicts, checker steps) *)
let json_recert : (string * float * int * int * int) list ref = ref []

(* serve section: flat (metric, value) gauges of the load run *)
let json_serve : (string * float) list ref = ref []

(* fuzz section: flat (metric, value) gauges of the campaign *)
let json_fuzz : (string * float) list ref = ref []

let record_worlds ~program ~engine worlds =
  json_worlds := (program, engine, worlds) :: !json_worlds

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  let sep first = if !first then first := false else pr ",\n" in
  pr "{\n  \"benchmarks\": [\n";
  let first = ref true in
  List.iter
    (fun (name, runs, ns) ->
      sep first;
      pr "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_run\": %.2f}"
        (json_escape name) runs ns)
    (List.rev !json_benchmarks);
  pr "\n  ],\n  \"worlds\": [\n";
  let first = ref true in
  List.iter
    (fun (program, engine, worlds) ->
      sep first;
      pr "    {\"program\": \"%s\", \"engine\": \"%s\", \"worlds\": %d}"
        (json_escape program) (json_escape engine) worlds)
    (List.rev !json_worlds);
  pr "\n  ],\n  \"compile\": [\n";
  let first = ref true in
  List.iter
    (fun (pass, ns, hits, misses) ->
      sep first;
      pr
        "    {\"pass\": \"%s\", \"ns_per_unit\": %.2f, \"cache_hits\": %d, \
         \"cache_misses\": %d}"
        (json_escape pass) ns hits misses)
    (List.rev !json_compile);
  pr "\n  ],\n  \"diag\": [\n";
  let first = ref true in
  List.iter
    (fun (program, drf_ns, cap_ns, pct) ->
      sep first;
      pr
        "    {\"program\": \"%s\", \"drf_ns\": %.2f, \"capture_ns\": %.2f, \
         \"overhead_pct\": %.2f}"
        (json_escape program) drf_ns cap_ns pct)
    (List.rev !json_diag);
  pr "\n  ],\n  \"shrink\": [\n";
  let first = ref true in
  List.iter
    (fun (program, os, ms, osw, msw, att) ->
      sep first;
      pr
        "    {\"program\": \"%s\", \"orig_steps\": %d, \"min_steps\": %d, \
         \"orig_switches\": %d, \"min_switches\": %d, \"attempts\": %d}"
        (json_escape program) os ms osw msw att)
    (List.rev !json_shrink);
  pr "\n  ],\n  \"link\": [\n";
  let first = ref true in
  List.iter
    (fun (case, ns, verdicts, cached, steps) ->
      sep first;
      pr
        "    {\"case\": \"%s\", \"ns_per_link\": %.2f, \"verdicts\": %d, \
         \"cached_verdicts\": %d, \"checker_steps\": %d}"
        (json_escape case) ns verdicts cached steps)
    (List.rev !json_link);
  pr "\n  ],\n  \"recert\": [\n";
  let first = ref true in
  List.iter
    (fun (case, ns, verdicts, cached, steps) ->
      sep first;
      pr
        "    {\"case\": \"%s\", \"ns_per_recert\": %.2f, \"verdicts\": %d, \
         \"cached_verdicts\": %d, \"checker_steps\": %d}"
        (json_escape case) ns verdicts cached steps)
    (List.rev !json_recert);
  pr "\n  ],\n  \"serve\": [\n";
  let first = ref true in
  List.iter
    (fun (metric, value) ->
      sep first;
      pr "    {\"metric\": \"%s\", \"value\": %.2f}" (json_escape metric) value)
    (List.rev !json_serve);
  pr "\n  ],\n  \"fuzz\": [\n";
  let first = ref true in
  List.iter
    (fun (metric, value) ->
      sep first;
      pr "    {\"metric\": \"%s\", \"value\": %.2f}" (json_escape metric) value)
    (List.rev !json_fuzz);
  pr "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "@.json results written to %s@." path

(* ------------------------------------------------------------------ *)
(* Bechamel helpers                                                    *)
(* ------------------------------------------------------------------ *)

let run_group ~name (tests : Test.t list) : (string * float) list =
  let test = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let runs_of k =
    match Hashtbl.find_opt raw k with
    | Some b -> Array.length b.Benchmark.lr
    | None -> 0
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun k v acc ->
        match Analyze.OLS.estimates v with
        | Some (t :: _) -> (k, t) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (k, t) -> json_benchmarks := (k, runs_of k, t) :: !json_benchmarks)
    rows;
  rows

let pp_ns ppf t =
  if t > 1e9 then Fmt.pf ppf "%8.2f s " (t /. 1e9)
  else if t > 1e6 then Fmt.pf ppf "%8.2f ms" (t /. 1e6)
  else if t > 1e3 then Fmt.pf ppf "%8.2f us" (t /. 1e3)
  else Fmt.pf ppf "%8.0f ns" t

let print_timings title rows =
  Fmt.pr "@.--- %s ---@." title;
  List.iter (fun (name, t) -> Fmt.pr "  %-48s %a@." name pp_ns t) rows

let staged f = Staged.stage f

(* ------------------------------------------------------------------ *)
(* fig11-passes: run & time every compilation pass                      *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  Fmt.pr "@.=== FIG 11 — compilation passes ===@.";
  (* correctness: per-pass simulation verdicts over the corpus *)
  let total = ref 0 and ok = ref 0 and inconclusive = ref 0 in
  let per_pass : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, client, _) ->
      List.iter
        (fun r ->
          incr total;
          let o, i =
            Option.value ~default:(0, 0)
              (Hashtbl.find_opt per_pass r.Cascompcert.Framework.pass)
          in
          match r.Cascompcert.Framework.outcome with
          | Cascompcert.Simulation.Sim_ok _ ->
            incr ok;
            Hashtbl.replace per_pass r.Cascompcert.Framework.pass (o + 1, i)
          | Cascompcert.Simulation.Sim_inconclusive _ ->
            incr inconclusive;
            Hashtbl.replace per_pass r.Cascompcert.Framework.pass (o, i + 1)
          | Cascompcert.Simulation.Sim_fail _ ->
            Hashtbl.replace per_pass r.Cascompcert.Framework.pass (o, i))
        (Cascompcert.Framework.check_passes client))
    (Corpus.sequential_clients ());
  Fmt.pr
    "footprint-preserving simulation: %d/%d checks ok (%d inconclusive, 0 \
     failures)@."
    !ok !total !inconclusive;
  Fmt.pr "%-16s %s@." "pass" "sim checks ok";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_pass []
  |> List.sort compare
  |> List.iter
       (fun (p, (o, i)) -> Fmt.pr "  %-16s %d ok, %d inconclusive@." p o i);
  (* speed: per-pass transformation time on the fused corpus program *)
  let big : Clight.program =
    let clients =
      List.map (fun (_, c, _) -> c) (Corpus.sequential_clients ())
    in
    {
      Clight.funcs = List.concat_map (fun c -> c.Clight.funcs) clients;
      globals =
        (match Genv.link (List.map (fun c -> c.Clight.globals) clients) with
        | Ok ge -> List.map (fun (_, _, g) -> g) (Genv.bindings ge)
        | Error _ -> []);
    }
  in
  let a = Cas_compiler.Driver.compile_artifacts big in
  let open Cas_compiler in
  print_timings "per-pass transformation time (fused corpus)"
    (run_group ~name:"fig11"
       [
         Test.make ~name:"SimplLocals" (staged (fun () -> Simpllocals.compile big));
         Test.make ~name:"Cshmgen" (staged (fun () -> Cshmgen.compile a.Driver.clight_simpl));
         Test.make ~name:"Cminorgen" (staged (fun () -> Cminorgen.compile a.Driver.csharpminor));
         Test.make ~name:"Selection" (staged (fun () -> Selection.compile a.Driver.cminor));
         Test.make ~name:"RTLgen" (staged (fun () -> Rtlgen.compile a.Driver.cminorsel));
         Test.make ~name:"Tailcall" (staged (fun () -> Tailcall.compile a.Driver.rtl));
         Test.make ~name:"Renumber" (staged (fun () -> Renumber.compile a.Driver.rtl_tailcall));
         Test.make ~name:"ConstProp" (staged (fun () -> Constprop.compile a.Driver.rtl_renumber));
         Test.make ~name:"CSE" (staged (fun () -> Cse.compile a.Driver.rtl_constprop));
         Test.make ~name:"Deadcode" (staged (fun () -> Deadcode.compile a.Driver.rtl_cse));
         Test.make ~name:"Allocation" (staged (fun () -> Allocation.compile a.Driver.rtl_deadcode));
         Test.make ~name:"Tunneling" (staged (fun () -> Tunneling.compile a.Driver.ltl));
         Test.make ~name:"Linearize" (staged (fun () -> Linearize.compile a.Driver.ltl_tunneled));
         Test.make ~name:"CleanupLabels" (staged (fun () -> Cleanuplabels.compile a.Driver.linear));
         Test.make ~name:"Stacking" (staged (fun () -> Stacking.compile a.Driver.linear_clean));
         Test.make ~name:"Asmgen" (staged (fun () -> Asmgen.compile a.Driver.mach));
         Test.make ~name:"whole-pipeline" (staged (fun () -> Driver.compile big));
       ])

(* ------------------------------------------------------------------ *)
(* fig2-checks: the framework steps as checks, with timings             *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  Fmt.pr "@.=== FIG 2 — framework steps on the concurrent corpus ===@.";
  List.iter
    (fun input ->
      let run = Cascompcert.Framework.check_fig2 input in
      Fmt.pr "%a@." Cascompcert.Framework.pp_run run)
    (List.filter
       (fun i -> i.Cascompcert.Framework.name <> "producer-consumer")
       (Corpus.framework_inputs ()));
  let input = List.hd (Corpus.framework_inputs ()) in
  let src = Cascompcert.Framework.source_prog input in
  let tgt = Cascompcert.Framework.target_prog input in
  let w p =
    match World.load p ~args:[] with Ok w -> w | Error _ -> assert false
  in
  let w_src = w src and w_tgt = w tgt in
  print_timings "check timings (lock-counter)"
    (run_group ~name:"fig2"
       [
         Test.make ~name:"DRF(source), preemptive"
           (staged (fun () -> Race.drf w_src));
         Test.make ~name:"NPDRF(source)" (staged (fun () -> Race.npdrf w_src));
         Test.make ~name:"DRF(target), preemptive"
           (staged (fun () -> Race.drf w_tgt));
         Test.make ~name:"traces source preemptive"
           (staged (fun () ->
                Explore.traces ~max_steps:2500 Preemptive.steps
                  (Gsem.initials w_src)));
         Test.make ~name:"traces source non-preemptive"
           (staged (fun () ->
                Explore.traces ~max_steps:2500 Nonpreemptive.steps
                  (Gsem.initials w_src)));
         Test.make ~name:"whole Fig.2 pipeline"
           (staged (fun () -> Cascompcert.Framework.check_fig2 input));
       ])

(* ------------------------------------------------------------------ *)
(* npsem-reduction: preemptive vs non-preemptive state-space sizes      *)
(* ------------------------------------------------------------------ *)

let np_reduction () =
  Fmt.pr
    "@.=== NP-semantics reduction — why Lemma 9 matters quantitatively ===@.";
  Fmt.pr "%-24s %7s %9s %9s %7s %9s %9s %7s@." "program" "threads" "preempt"
    "np" "np-x" "dpor" "dpor-par" "dpor-x";
  let progs =
    [
      ("lock-counter", 2, Corpus.lock_counter_prog ());
      ( "lock-counter-3",
        3,
        Lang.prog
          [
            Lang.Mod (Clight.lang, Corpus.counter ());
            Lang.Mod (Cimp.lang, Corpus.gamma_lock ());
          ]
          [ "inc"; "inc"; "inc" ] );
      ( "prints-2",
        2,
        Lang.prog
          [
            Lang.Mod
              (Clight.lang, Parse.clight {| void f() { print(1); print(2); } |});
          ]
          [ "f"; "f" ] );
      ( "prints-3",
        3,
        Lang.prog
          [
            Lang.Mod
              (Clight.lang, Parse.clight {| void f() { print(1); print(2); } |});
          ]
          [ "f"; "f"; "f" ] );
    ]
  in
  List.iter
    (fun (name, n, p) ->
      match World.load p ~args:[] with
      | Error _ -> ()
      | Ok w ->
        let count step =
          (Explore.reachable ~max_worlds:400_000 step (Gsem.initials w)
             ~visit:(fun _ -> ()))
            .Explore.visited
        in
        let mc engine =
          (Engine.explore ~engine ~max_worlds:400_000 w ~visit:(fun _ -> ()))
            .Cas_mc.Stats.worlds
        in
        let pre = count Preemptive.steps in
        let np = count Nonpreemptive.steps in
        let dpor = mc Engine.Dpor in
        let dpor_par = mc Engine.Dpor_par in
        record_worlds ~program:name ~engine:"naive" pre;
        record_worlds ~program:name ~engine:"np" np;
        record_worlds ~program:name ~engine:"dpor" dpor;
        record_worlds ~program:name ~engine:"dpor-par" dpor_par;
        let ratio a b = float_of_int a /. float_of_int (max 1 b) in
        Fmt.pr "%-24s %7d %9d %9d %6.1fx %9d %9d %6.1fx@." name n pre np
          (ratio pre np) dpor dpor_par (ratio pre dpor))
    progs

(* ------------------------------------------------------------------ *)
(* fig3-tso + lock-ablation                                            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Fmt.pr "@.=== FIG 3 — extended framework: x86-TSO and the TTAS lock ===@.";
  let client = Cas_compiler.Driver.compile (Corpus.counter ()) in
  let gamma = Corpus.gamma_lock () in
  Fmt.pr "%-14s %-36s %12s %12s@." "lock" "Lemma 16 (TSO+pi <= SC+gamma)"
    "TSO worlds" "dpor worlds";
  let variants =
    [
      ("TTAS", Cas_tso.Locks.pi_lock);
      ("TTAS+fence", Cas_tso.Locks.pi_lock_fenced);
    ]
  in
  List.iter
    (fun (name, pi) ->
      let g =
        Cas_tso.Objsim.check_drf_guarantee ~max_steps:2500 ~clients:[ client ]
          ~pi ~gamma ~entries:[ "inc"; "inc" ] ()
      in
      let worlds =
        match Cas_tso.Tso.load [ client; pi ] [ "inc"; "inc" ] with
        | Error _ -> 0
        | Ok w ->
          (Explore.reachable_gen ~max_worlds:400_000 Cas_tso.Tso.system
             (Cas_tso.Tso.initials w) ~visit:(fun _ -> ()))
            .Explore.visited
      in
      let dpor_st =
        match Cas_tso.Tso.load [ client; pi ] [ "inc"; "inc" ] with
        | Error _ -> Cas_mc.Stats.zero ~engine:"dpor"
        | Ok w ->
          Cas_tso.Tso.explore ~engine:Engine.Dpor ~max_worlds:400_000 w
            ~visit:(fun _ -> ())
      in
      record_worlds ~program:("tso-" ^ name) ~engine:"naive" worlds;
      record_worlds ~program:("tso-" ^ name) ~engine:"dpor"
        dpor_st.Cas_mc.Stats.worlds;
      (* the spinning TTAS loop violates the DPOR acyclicity
         precondition: worlds shrink but the path budget truncates,
         marked with a star *)
      Fmt.pr "%-14s %-36s %12d %11d%s@." name
        (if g.Cas_tso.Objsim.holds then "holds" else "FAILS")
        worlds dpor_st.Cas_mc.Stats.worlds
        (if dpor_st.Cas_mc.Stats.truncated then "*" else " "))
    variants;
  let sims =
    Cas_tso.Objsim.check_object_sim ~pi:Cas_tso.Locks.pi_lock ~gamma
      ~entries:[ ("lock", [ 0; 1 ]); ("unlock", [ 0 ]) ]
      ()
  in
  Fmt.pr "object simulation pi_lock <=o gamma_lock:@.";
  List.iter (fun r -> Fmt.pr "  %a@." Cas_tso.Objsim.pp_obj_sim r) sims;
  print_timings "TSO exploration time (2 contending threads)"
    (run_group ~name:"fig3"
       (List.map
          (fun (name, pi) ->
            Test.make ~name
              (staged (fun () ->
                   match Cas_tso.Tso.load [ client; pi ] [ "inc"; "inc" ] with
                   | Error _ -> ()
                   | Ok w ->
                     ignore
                       (Explore.reachable_gen ~max_worlds:400_000
                          Cas_tso.Tso.system (Cas_tso.Tso.initials w)
                          ~visit:(fun _ -> ())))))
          variants))

(* ------------------------------------------------------------------ *)
(* fig13-loc: the paper's only table                                    *)
(* ------------------------------------------------------------------ *)

(* Fig. 13 of the paper: (pass, CompCert spec, their spec, CompCert
   proof, their proof), in lines of Coq. *)
let fig13_paper =
  [
    ("Cshmgen", 515, 1021, 1071, 1503);
    ("Cminorgen", 753, 1556, 1152, 1251);
    ("Selection", 336, 500, 647, 783);
    ("RTLgen", 428, 543, 821, 862);
    ("Tailcall", 173, 328, 275, 405);
    ("Renumber", 86, 245, 117, 358);
    ("Allocation", 704, 785, 1410, 1700);
    ("Tunneling", 131, 339, 166, 475);
    ("Linearize", 236, 371, 349, 733);
    ("CleanupLabels", 126, 387, 161, 388);
    ("Stacking", 730, 1038, 1108, 2135);
    ("Asmgen", 208, 338, 571, 1128);
  ]

let fig13_framework_paper =
  [
    ("Compositionality (Lem. 6)", 580, 2249);
    ("DRF preservation (Lem. 8)", 358, 1142);
    ("Semantics equiv. (Lem. 9)", 1540, 4718);
    ("Lifting", 813, 1795);
  ]

let loc_of_file path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then incr n
       done
     with End_of_file -> close_in ic);
    !n
  end
  else 0

let our_pass_file = function
  | "Cshmgen" -> [ "lib/compiler/cshmgen.ml" ]
  | "Cminorgen" -> [ "lib/compiler/cminorgen.ml" ]
  | "Selection" -> [ "lib/compiler/selection.ml" ]
  | "RTLgen" -> [ "lib/compiler/rtlgen.ml" ]
  | "Tailcall" -> [ "lib/compiler/tailcall.ml" ]
  | "Renumber" -> [ "lib/compiler/renumber.ml" ]
  | "Allocation" -> [ "lib/compiler/allocation.ml"; "lib/compiler/liveness.ml" ]
  | "Tunneling" -> [ "lib/compiler/tunneling.ml" ]
  | "Linearize" -> [ "lib/compiler/linearize.ml" ]
  | "CleanupLabels" -> [ "lib/compiler/cleanuplabels.ml" ]
  | "Stacking" -> [ "lib/compiler/stacking.ml" ]
  | "Asmgen" -> [ "lib/compiler/asmgen.ml" ]
  | _ -> []

let fig13 () =
  Fmt.pr "@.=== FIG 13 — lines of code (paper: Coq; ours: OCaml) ===@.";
  Fmt.pr "%-28s %22s %22s %10s@." "pass" "paper spec (CC/ours)"
    "paper proof (CC/ours)" "this repo";
  List.iter
    (fun (name, sc, so, pc, po) ->
      let ours =
        List.fold_left (fun acc f -> acc + loc_of_file f) 0 (our_pass_file name)
      in
      Fmt.pr "%-28s %12d / %5d %13d / %5d %10s@." name sc so pc po
        (if ours = 0 then "n/a" else string_of_int ours))
    fig13_paper;
  Fmt.pr "-- framework components --@.";
  let our_framework =
    [
      ( "Compositionality (Lem. 6)",
        [ "lib/core/simulation.ml"; "lib/core/framework.ml" ] );
      ("DRF preservation (Lem. 8)", [ "lib/conc/race.ml" ]);
      ( "Semantics equiv. (Lem. 9)",
        [
          "lib/conc/preemptive.ml";
          "lib/conc/nonpreemptive.ml";
          "lib/conc/explore.ml";
          "lib/conc/refine.ml";
        ] );
      ("Lifting", [ "lib/conc/world.ml"; "lib/conc/gsem.ml" ]);
    ]
  in
  List.iter
    (fun (name, sp, pr) ->
      let files = try List.assoc name our_framework with Not_found -> [] in
      let ours = List.fold_left (fun acc f -> acc + loc_of_file f) 0 files in
      Fmt.pr "%-28s %12s / %5d %13s / %5d %10s@." name "-" sp "-" pr
        (if ours = 0 then "n/a" else string_of_int ours))
    fig13_framework_paper;
  Fmt.pr
    "(paper columns are Coq spec+proof lines; ours are OCaml implementation \
     lines —@.the proofs are replaced by the executable checkers and the test \
     suite)@."

(* ------------------------------------------------------------------ *)
(* compile: pass manager, certificate cache, parallel unit builds       *)
(* ------------------------------------------------------------------ *)

let compile_section () =
  Fmt.pr "@.=== COMPILE — pass manager & certificate cache ===@.";
  let open Cas_compiler in
  let units = List.map (fun (_, c, _) -> c) (Corpus.sequential_clients ()) in
  let n_units = List.length units in
  (* cold: no cache, per-pass wall-clock straight from the instrumented
     driver *)
  let per_pass : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let cold = Driver.compile_all ~cache:false units in
  List.iter
    (fun (c : Driver.compiled) ->
      List.iter
        (fun st ->
          let t =
            Option.value ~default:0.
              (Hashtbl.find_opt per_pass st.Driver.st_pass)
          in
          Hashtbl.replace per_pass st.Driver.st_pass
            (t +. st.Driver.st_wall_ns))
        c.Driver.c_stats)
    cold;
  (* warm: prime the cache, recompile, read the hit/miss counters *)
  Cache.reset_stats ();
  ignore (Driver.compile_all ~cache:true units);
  ignore (Driver.compile_all ~cache:true units);
  let stats_by_pass =
    List.map
      (fun (s : Cache.stats) -> (s.Cache.name, s))
      (Driver.cache_stats ())
  in
  Fmt.pr "%-16s %12s %6s %7s   (%d units, warm pass = 2nd compile)@." "pass"
    "cold/unit" "hits" "misses" n_units;
  List.iter
    (fun pass ->
      let cold_ns =
        Option.value ~default:0. (Hashtbl.find_opt per_pass pass)
        /. float_of_int (max 1 n_units)
      in
      let hits, misses =
        match List.assoc_opt pass stats_by_pass with
        | Some s -> (s.Cache.hits, s.Cache.misses)
        | None -> (0, 0)
      in
      json_compile := (pass, cold_ns, hits, misses) :: !json_compile;
      Fmt.pr "  %-16s %a %6d %7d@." pass pp_ns cold_ns hits misses)
    Driver.pass_names;
  (* parallel per-module builds: wall-clock for the whole corpus *)
  print_timings "whole-corpus build (uncached)"
    (run_group ~name:"compile"
       [
         Test.make ~name:"jobs-1"
           (staged (fun () -> Driver.compile_all ~cache:false ~jobs:1 units));
         (let jobs = max 2 (Cas_base.Pool.default_jobs ()) in
          Test.make ~name:(Fmt.str "jobs-%d" jobs)
            (staged (fun () -> Driver.compile_all ~cache:false ~jobs units)));
         Test.make ~name:"warm-cache"
           (staged (fun () -> Driver.compile_all ~cache:true units));
       ])

(* ------------------------------------------------------------------ *)
(* diag: counterexample capture overhead & schedule shrinking           *)
(* ------------------------------------------------------------------ *)

let diag () =
  Fmt.pr "@.=== DIAG — counterexample capture & schedule shrinking ===@.";
  let progs =
    [
      ( "racy-counter",
        Corpus.racy_prog (),
        Corpus.racy_counter_src,
        [ "inc"; "inc" ] );
      ( "racy-observer",
        Corpus.observer_prog (),
        Corpus.racy_observer_writer_src,
        [ "writer"; "reader" ] );
      ( "lock-counter",
        Corpus.lock_counter_prog (),
        Corpus.counter_src,
        [ "inc"; "inc" ] );
    ]
  in
  let worlds =
    List.filter_map
      (fun (name, p, src, entries) ->
        match World.load p ~args:[] with
        | Error _ -> None
        | Ok w -> Some (name, w, src, entries))
      progs
  in
  (* capture overhead: [Race.drf] vs [Capture.race], both exploring the
     dpor selection view — capture adds the recorder writes and the
     spanning-tree path reconstruction on top of the same search.
     Best-of-N minimum wall clock, not OLS means: these runs sit in the
     hundreds of microseconds where GC pauses swamp a percent-level
     comparison, and the minimum is the noise-robust estimator for a
     deterministic computation. *)
  let rounds = 25 in
  Fmt.pr "capture overhead over plain DRF (dpor engine, best of %d):@." rounds;
  Fmt.pr "  %-16s %11s %11s %9s@." "program" "drf" "capture" "overhead";
  List.iter
    (fun (name, w, _, _) ->
      let drf_f () = ignore (Race.drf ~engine:Engine.Dpor w) in
      let cap_f () = ignore (Cas_diag.Capture.race ~engine:Engine.Dpor w) in
      (* warm up, then time the two alternately so heap growth and GC
         state drift hit both sides equally *)
      drf_f ();
      cap_f ();
      Gc.full_major ();
      let drf_best = ref infinity and cap_best = ref infinity in
      for _ = 1 to rounds do
        let t0 = Unix.gettimeofday () in
        drf_f ();
        let t1 = Unix.gettimeofday () in
        cap_f ();
        let t2 = Unix.gettimeofday () in
        drf_best := min !drf_best ((t1 -. t0) *. 1e9);
        cap_best := min !cap_best ((t2 -. t1) *. 1e9)
      done;
      let drf_ns = !drf_best and cap_ns = !cap_best in
      let pct = (cap_ns -. drf_ns) /. drf_ns *. 100. in
      json_benchmarks :=
        ("diag capture:" ^ name, rounds, cap_ns)
        :: ("diag drf:" ^ name, rounds, drf_ns)
        :: !json_benchmarks;
      json_diag := (name, drf_ns, cap_ns, pct) :: !json_diag;
      Fmt.pr "  %-16s %a %a %+8.1f%%@." name pp_ns drf_ns pp_ns cap_ns pct)
    worlds;
  (* shrink effectiveness on the captured witnesses *)
  Fmt.pr "@.schedule shrinking (captured witness -> minimal):@.";
  Fmt.pr "  %-16s %14s %14s %9s@." "program" "steps" "switches" "attempts";
  List.iter
    (fun (name, w, src, entries) ->
      let rc = Cas_diag.Capture.race ~engine:Engine.Dpor w in
      match rc.Cas_diag.Capture.rc_verdict with
      | None -> Fmt.pr "  %-16s DRF: nothing to shrink@." name
      | Some v ->
        let wit =
          Cas_diag.Witness.make ~program:src ~entries
            ~with_lock:(name = "lock-counter")
            ~semantics:Cas_diag.Witness.Sc ~engine:"dpor" ~seed:0 ~verdict:v
            rc.Cas_diag.Capture.rc_steps
        in
        let r = Cas_diag.Shrink.shrink (Cas_diag.Sem.of_world w) wit in
        json_shrink :=
          ( name,
            r.Cas_diag.Shrink.sh_orig_steps,
            r.Cas_diag.Shrink.sh_min_steps,
            r.Cas_diag.Shrink.sh_orig_switches,
            r.Cas_diag.Shrink.sh_min_switches,
            r.Cas_diag.Shrink.sh_attempts )
          :: !json_shrink;
        Fmt.pr "  %-16s %5d -> %5d %7d -> %4d %9d@." name
          r.Cas_diag.Shrink.sh_orig_steps r.Cas_diag.Shrink.sh_min_steps
          r.Cas_diag.Shrink.sh_orig_switches r.Cas_diag.Shrink.sh_min_switches
          r.Cas_diag.Shrink.sh_attempts)
    worlds

(* ------------------------------------------------------------------ *)
(* link: certified object files, cold vs incremental relink, --jobs     *)
(* ------------------------------------------------------------------ *)

let link_section () =
  Fmt.pr "@.=== LINK — certifying linker & incremental relink ===@.";
  let open Cas_link in
  Cas_compiler.Cache.set_default_dir None;
  Cas_compiler.Cache.clear_memory ();
  let objs =
    List.map
      (fun (name, source) ->
        match Objfile.build ~name ~source () with
        | Ok o -> o
        | Error e -> Fmt.failwith "build %s: %s" name e)
      Corpus.link_module_srcs
  in
  let entries = [ "f" ] in
  let link ~jobs () =
    match Linker.link ~certify:true ~jobs ~entries objs with
    | Ok o -> o
    | Error e -> Fmt.failwith "link: %a" Linker.pp_error e
  in
  (* best-of-N minimum, as in the diag section: the link is deterministic
     and these runs are short enough for GC noise to dominate a mean *)
  let rounds = 9 in
  let measure ~case ~jobs ~cold =
    let best = ref infinity and last = ref None in
    if not cold then ignore (link ~jobs ());
    for _ = 1 to rounds do
      if cold then Cas_compiler.Cache.clear_memory ();
      let t0 = Unix.gettimeofday () in
      let o = link ~jobs () in
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      if dt < !best then best := dt;
      last := Some o
    done;
    let o = Option.get !last in
    let s = o.Linker.lk_stats in
    json_benchmarks := ("link:" ^ case, rounds, !best) :: !json_benchmarks;
    json_link :=
      (case, !best, s.Linker.l_verdicts, s.Linker.l_cached,
       s.Linker.l_checker_steps)
      :: !json_link;
    Fmt.pr "  %-24s %a   %d verdicts (%d cached), %d checker steps@." case
      pp_ns !best s.Linker.l_verdicts s.Linker.l_cached
      s.Linker.l_checker_steps
  in
  Fmt.pr "%d objects, entries [%a] (best of %d):@." (List.length objs)
    Fmt.(list ~sep:comma string)
    entries rounds;
  measure ~case:"cold" ~jobs:1 ~cold:true;
  measure ~case:"incremental" ~jobs:1 ~cold:false;
  let jobs = max 2 (Cas_base.Pool.default_jobs ()) in
  measure ~case:(Fmt.str "cold-jobs-%d" jobs) ~jobs ~cold:true;
  (* an incremental relink must re-verify nothing *)
  (match List.assoc_opt "incremental" (List.rev_map (fun (c, _, v, ca, st) -> (c, (v, ca, st))) !json_link) with
  | Some (v, cached, steps) when cached = v && steps = 0 -> ()
  | Some (v, cached, steps) ->
    Fmt.failwith
      "incremental relink re-verified: %d/%d cached, %d checker steps" cached
      v steps
  | None -> ())

(* ------------------------------------------------------------------ *)
(* recert: function-granular recertification after a one-function edit *)
(* ------------------------------------------------------------------ *)

(** Certify every module of the link corpus through all compilation
    passes, edit the body of one function ([sq] in [powers]), and
    re-certify the whole image. Verdicts are keyed by function body
    digest, so only the edited function's path through the pipeline may
    re-run the checker — every other function must be a pure cache hit
    with zero checker steps. *)
let recert_section () =
  Fmt.pr "@.=== RECERT — edit one function of N, re-certify ===@.";
  Cas_compiler.Cache.set_default_dir None;
  Cas_compiler.Cache.clear_memory ();
  let units =
    List.map
      (fun (name, src) -> (name, Parse.clight src))
      Corpus.link_module_srcs
  in
  (* the one-function edit: [sq]'s body, spelled differently but still
     squaring — every other function in the image is byte-identical *)
  let edited_powers =
    Parse.clight
      {|
      int sq(int n) { int t; t = n * n; return t; }
      int cube(int n) {
        int s;
        s = sq(n);
        return n * s;
      }
      void k() {
        int a;
        int b;
        a = cube(3);
        b = sq(3);
        print(a - b);
      }
|}
  in
  let edited_units =
    List.map
      (fun (name, p) -> (name, if name = "powers" then edited_powers else p))
      units
  in
  let nfuns =
    List.fold_left (fun acc (_, p) -> acc + List.length p.Clight.funcs) 0 units
  in
  let certify units =
    List.concat_map (fun (_, p) -> Cascompcert.Framework.check_passes p) units
  in
  let summarize reports =
    List.fold_left
      (fun (v, c, s) (r : Cascompcert.Framework.pass_sim_report) ->
        (v + 1, c + (if r.cached then 1 else 0), s + r.checker_steps))
      (0, 0, 0) reports
  in
  (* best-of-N minimum, as in the link section *)
  let rounds = 5 in
  let measure ~case ~prepare f =
    let best = ref infinity and last = ref None in
    for _ = 1 to rounds do
      prepare ();
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      if dt < !best then best := dt;
      last := Some r
    done;
    let reports = Option.get !last in
    let v, cached, steps = summarize reports in
    json_benchmarks := ("recert:" ^ case, rounds, !best) :: !json_benchmarks;
    json_recert := (case, !best, v, cached, steps) :: !json_recert;
    Fmt.pr "  %-24s %a   %d verdicts (%d cached), %d checker steps@." case
      pp_ns !best v cached steps;
    reports
  in
  Fmt.pr "%d modules, %d functions (best of %d):@." (List.length units) nfuns
    rounds;
  let cold =
    measure ~case:"cold"
      ~prepare:(fun () -> Cas_compiler.Cache.clear_memory ())
      (fun () -> certify units)
  in
  let _, _, cold_steps = summarize cold in
  (* recertifying an unchanged image must re-verify nothing *)
  let unchanged =
    measure ~case:"unchanged" ~prepare:(fun () -> ()) (fun () -> certify units)
  in
  let v_un, c_un, s_un = summarize unchanged in
  if not (c_un = v_un && s_un = 0) then
    Fmt.failwith "unchanged recert re-verified: %d/%d cached, %d checker steps"
      c_un v_un s_un;
  (* after the edit, only [sq]'s verdicts may miss *)
  let edited =
    measure ~case:"edit-1-fn"
      ~prepare:(fun () ->
        Cas_compiler.Cache.clear_memory ();
        ignore (certify units))
      (fun () -> certify edited_units)
  in
  List.iter
    (fun (r : Cascompcert.Framework.pass_sim_report) ->
      if r.entry = "sq" then begin
        if r.cached then
          Fmt.failwith "edited function %s: stale cached verdict for %s"
            r.entry r.pass
      end
      else if (not r.cached) || r.checker_steps <> 0 then
        Fmt.failwith
          "untouched function %s re-verified (%s: cached=%b, %d checker steps)"
          r.entry r.pass r.cached r.checker_steps)
    edited;
  let _, _, edit_steps = summarize edited in
  if edit_steps * 2 >= cold_steps then
    Fmt.failwith
      "recert after a one-function edit cost %d checker steps vs %d cold — \
       not function-granular"
      edit_steps cold_steps

(* ------------------------------------------------------------------ *)
(* hotpath: microbenches of the three exploration inner loops           *)
(* ------------------------------------------------------------------ *)

(** A representative mid-exploration world: descend a fixed number of
    scheduler choices from the loaded world so stacks and memory carry
    real frames, not just the initial cores. *)
let mid_world w0 ~depth =
  let sys = Engine.selection_system in
  let rec go w n =
    if n = 0 then w
    else
      match
        List.find_map
          (fun (tr : World.t Cas_mc.Mcsys.trans) ->
            match tr.Cas_mc.Mcsys.target with
            | Cas_mc.Mcsys.Next w' -> Some w'
            | Cas_mc.Mcsys.Abort -> None)
          (sys.Cas_mc.Mcsys.trans w)
      with
      | Some w' -> go w' (n - 1)
      | None -> w
  in
  go w0 depth

let hotpath () =
  Fmt.pr "@.=== HOTPATH — fingerprint / conflict / store microbenches ===@.";
  let w0 =
    match World.load (Corpus.lock_counter_prog ()) ~args:[] with
    | Ok w -> w
    | Error _ -> assert false
  in
  let w = mid_world w0 ~depth:7 in
  let sys = Engine.selection_system in
  let key () = sys.Cas_mc.Mcsys.fingerprint w in
  let mem = w.World.mem in
  (* footprints over global cells: one disjoint pair (the summary fast
     path) and one conflicting pair (the word loop) *)
  let a b o = Addr.make b o in
  let d1 =
    Footprint.union
      (Footprint.reads [ a 0 0; a 1 0 ])
      (Footprint.writes [ a 1 0 ])
  in
  let d2 =
    Footprint.union
      (Footprint.reads [ a 2 0; a 3 0 ])
      (Footprint.writes [ a 3 0 ])
  in
  let d3 =
    Footprint.union
      (Footprint.reads [ a 1 0; a 4 0 ])
      (Footprint.writes [ a 1 0 ])
  in
  let store = Cas_mc.Store.create ~capacity:100_000 () in
  let seen_key = key () in
  ignore (Cas_mc.Store.add store seen_key);
  print_timings "hot paths (lock-counter, mid-exploration world)"
    (run_group ~name:"hotpath"
       [
         Test.make ~name:"world-key" (staged key);
         Test.make ~name:"memory-fingerprint"
           (staged (fun () -> Memory.fingerprint mem));
         Test.make ~name:"conflict-disjoint"
           (staged (fun () -> Footprint.conflict d1 d2));
         Test.make ~name:"conflict-overlap"
           (staged (fun () -> Footprint.conflict d1 d3));
         Test.make ~name:"store-add-seen"
           (staged (fun () -> Cas_mc.Store.add store seen_key));
       ])

(* ------------------------------------------------------------------ *)
(* explore: wall-clock exploration over the dpor bench corpus           *)
(* ------------------------------------------------------------------ *)

(** Wall-clock exploration sections — the numbers the bench-regress CI
    gate compares against BENCH_BASELINE.json. Best-of-N minimum, as in
    the diag section: exploration is deterministic and the minimum is
    the noise-robust estimator. *)
let explore_section ~jobs () =
  Fmt.pr "@.=== EXPLORE — wall-clock exploration (regression-gated) ===@.";
  let jobs =
    match jobs with Some j -> j | None -> max 2 (Cas_base.Pool.default_jobs ())
  in
  let cores = Domain.recommended_domain_count () in
  let progs =
    [
      ("lock-counter", Corpus.lock_counter_prog ());
      ( "lock-counter-3",
        Lang.prog
          [
            Lang.Mod (Clight.lang, Corpus.counter ());
            Lang.Mod (Cimp.lang, Corpus.gamma_lock ());
          ]
          [ "inc"; "inc"; "inc" ] );
      ( "prints-3",
        Lang.prog
          [
            Lang.Mod
              (Clight.lang, Parse.clight {| void f() { print(1); print(2); } |});
          ]
          [ "f"; "f"; "f" ] );
    ]
  in
  let rounds = 7 in
  Fmt.pr "best of %d (wall clock), dpor-par on %d domains:@." rounds jobs;
  let measure name f =
    f ();
    (* warm up *)
    Gc.full_major ();
    let best = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      if dt < !best then best := dt
    done;
    json_benchmarks := (name, rounds, !best) :: !json_benchmarks;
    Fmt.pr "  %-40s %a@." name pp_ns !best;
    !best
  in
  let t_dpor3 = ref nan and t_par3 = ref nan in
  List.iter
    (fun (pname, p) ->
      match World.load p ~args:[] with
      | Error _ -> ()
      | Ok w ->
        (* correctness gates first, on every gated program: the optimal
           source-DPOR invariants are cheap to check — no schedule may
           end sleep-set-blocked, and the visited world set must be
           steal-invariant (dpor-par at any jobs count agrees with
           sequential dpor world for world) *)
        let st_dpor =
          Engine.explore ~engine:Engine.Dpor ~max_worlds:400_000 w
            ~visit:(fun _ -> ())
        in
        let st_par =
          Engine.explore ~engine:Engine.Dpor_par ~jobs ~max_worlds:400_000 w
            ~visit:(fun _ -> ())
        in
        record_worlds ~program:pname ~engine:"dpor" st_dpor.Cas_mc.Stats.worlds;
        record_worlds ~program:pname ~engine:"dpor-par"
          st_par.Cas_mc.Stats.worlds;
        if st_dpor.Cas_mc.Stats.sleep_prunings <> 0 then
          Fmt.failwith "explore %s: dpor left %d sleep-set-blocked schedules"
            pname st_dpor.Cas_mc.Stats.sleep_prunings;
        if st_par.Cas_mc.Stats.sleep_prunings <> 0 then
          Fmt.failwith
            "explore %s: dpor-par(%d) left %d sleep-set-blocked schedules"
            pname jobs st_par.Cas_mc.Stats.sleep_prunings;
        if st_par.Cas_mc.Stats.worlds <> st_dpor.Cas_mc.Stats.worlds then
          Fmt.failwith
            "explore %s: dpor-par(%d) visited %d worlds, dpor %d — the \
             visited world set must be steal-invariant"
            pname jobs st_par.Cas_mc.Stats.worlds st_dpor.Cas_mc.Stats.worlds;
        let t =
          measure
            (Fmt.str "explore dpor:%s" pname)
            (fun () ->
              ignore
                (Engine.explore ~engine:Engine.Dpor ~max_worlds:400_000 w
                   ~visit:(fun _ -> ())))
        in
        ignore
          (measure
             (Fmt.str "explore drf-dpor:%s" pname)
             (fun () -> ignore (Race.drf ~engine:Engine.Dpor w)));
        if pname = "lock-counter-3" then begin
          t_dpor3 := t;
          t_par3 :=
            measure
              (Fmt.str "explore dpor-par:%s" pname)
              (fun () ->
                ignore
                  (Engine.explore ~engine:Engine.Dpor_par ~jobs
                     ~max_worlds:400_000 w ~visit:(fun _ -> ())));
          ignore
            (measure
               (Fmt.str "explore naive:%s" pname)
               (fun () ->
                 ignore
                   (Engine.explore ~engine:Engine.Naive ~max_worlds:400_000 w
                      ~visit:(fun _ -> ()))))
        end)
    progs;
  (* parallel speedup gate, self-conditioned on the machine: a 1-core
     container cannot speed anything up, so the wall-clock gate only
     arms when the domains can actually run in parallel. The
     correctness gates above always run. *)
  if cores >= 2 && jobs >= 2 then begin
    let need = if jobs >= 8 && cores >= 8 then 3.0 else 1.6 in
    let sp = !t_dpor3 /. !t_par3 in
    Fmt.pr "  dpor-par(%d) speedup on lock-counter-3: %.2fx (gate: %.1fx)@."
      jobs sp need;
    if sp < need then
      Fmt.failwith
        "explore: dpor-par(%d) speedup on lock-counter-3 is %.2fx, gate %.1fx"
        jobs sp need
  end
  else
    Fmt.pr
      "  speedup gate skipped: %d core%s available (correctness gates ran)@."
      cores
      (if cores = 1 then "" else "s");
  (* the TSO machine shares Memory and the fingerprint scheme; gate it too *)
  let client = Cas_compiler.Driver.compile (Corpus.counter ()) in
  match
    Cas_tso.Tso.load [ client; Cas_tso.Locks.pi_lock_fenced ] [ "inc"; "inc" ]
  with
  | Error _ -> ()
  | Ok w ->
    ignore @@ measure "explore tso-dpor:TTAS+fence" (fun () ->
        ignore
          (Cas_tso.Tso.explore ~engine:Engine.Dpor ~max_worlds:400_000 w
             ~visit:(fun _ -> ())));
    ignore @@ measure "explore tso-naive:TTAS+fence" (fun () ->
        ignore
          (Cas_tso.Tso.explore ~engine:Engine.Naive ~max_worlds:400_000 w
             ~visit:(fun _ -> ())))

(* ------------------------------------------------------------------ *)
(* serve: cascd under a Zipf client fleet                               *)
(* ------------------------------------------------------------------ *)

(** The load-driver bench for the certification service: a fleet of
    persistent clients whose module reuse follows a Zipf law (a few hot
    modules dominate, a long tail stays cold — build-farm traffic), all
    hammering one in-process daemon.

    Self-gated (like [recert_section]): the warm daemon must beat the
    cold per-request path by >= 5x in throughput, and an identical-request
    burst against a slowed daemon must coalesce at least half of its
    duplicates onto one execution. [check_baseline] only gates the
    "explore" rows, so the failures here are [Fmt.failwith], not the
    tolerance band. *)
let serve_section () =
  let module Protocol = Cas_serve.Protocol in
  let module Daemon = Cas_serve.Daemon in
  let module Client = Cas_serve.Client in
  Fmt.pr "@.=== SERVE — cascd under a Zipf client fleet (self-gated) ===@.";
  (* memory tier only: the cold path below models a fresh [casc]
     process, and a shared disk cache would let it cheat *)
  Cas_compiler.Cache.set_default_dir None;
  Cas_compiler.Cache.clear_memory ();
  Cas_compiler.Cache.reset_stats ();
  let record metric v = json_serve := (metric, v) :: !json_serve in
  let n_mods = 24 in
  (* one source per rank, [powers]-sized (a call chain across several
     functions): small enough to certify in milliseconds, big enough
     that certification — not socket round-trips — dominates the cold
     path *)
  let src rank =
    Fmt.str
      {|
      int x%d = %d;
      int scale%d(int n) { int t; t = n * %d; return t; }
      int twice%d(int n) {
        int s;
        int u;
        s = scale%d(n);
        u = scale%d(n);
        return s + u;
      }
      int probe%d(int n) { int u; u = twice%d(n); return u + x%d; }
      void m%d() {
        int a;
        int b;
        a = probe%d(%d);
        b = twice%d(a);
        x%d = b;
        print(a + b);
      }
|}
      rank rank rank (rank + 2) rank rank rank rank rank rank rank rank
      (rank + 1) rank rank
  in
  let certify rank = Protocol.Certify { source = src rank } in
  let cdf = Load.zipf_cdf ~n:n_mods ~s:1.1 in
  let cfg =
    { Daemon.default_config with Daemon.jobs = 4; Daemon.queue_cap = 256 }
  in
  (* --- cold per-request path: one fresh [casc sim] *process* per
     request, which is exactly what the daemon replaces — every spawn
     pays executable startup plus a cacheless certification. Timed
     before the daemon exists so its warm caches cannot leak in. The
     gate uses the *fastest* spawn, the most conservative baseline. --- *)
  let casc_exe =
    (* bench/main.exe and bin/casc.exe are siblings under _build/default *)
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "casc.exe")
  in
  let n_cold = 12 in
  let cold_rng = Load.rng ~seed:42 in
  let cold_src =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "cascd-bench-%d.c" (Unix.getpid ()))
  in
  let spawn_sim rank =
    let oc = open_out cold_src in
    output_string oc (src rank);
    close_out oc;
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let t0 = Unix.gettimeofday () in
    let pid =
      Unix.create_process casc_exe
        [| casc_exe; "sim"; cold_src |]
        devnull devnull devnull
    in
    let _, status = Unix.waitpid [] pid in
    let dt = Unix.gettimeofday () -. t0 in
    Unix.close devnull;
    match status with
    | Unix.WEXITED 0 -> dt
    | _ -> Fmt.failwith "serve: cold [casc sim] run failed"
  in
  let cold_best_s, cold_mean_s =
    if Sys.file_exists casc_exe then begin
      let times =
        List.init n_cold (fun _ -> spawn_sim (Load.sample cdf cold_rng))
      in
      Sys.remove cold_src;
      ( List.fold_left min infinity times,
        List.fold_left ( +. ) 0. times /. float_of_int n_cold )
    end
    else begin
      (* bench built alone (no [dune build] first): fall back to the
         in-process certify cost, which *understates* the cold path —
         no process startup — so the gate only gets harder *)
      Fmt.pr "  note: %s not built; cold path measured in-process@." casc_exe;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n_cold do
        Cas_compiler.Cache.clear_memory ();
        match Daemon.exec cfg (certify (Load.sample cdf cold_rng)) with
        | Ok _ -> ()
        | Error e -> Fmt.failwith "serve: cold certify failed: %s" e
      done;
      let s = (Unix.gettimeofday () -. t0) /. float_of_int n_cold in
      (s, s)
    end
  in
  let cold_rps = 1. /. cold_best_s in
  (* the same certification without the process boundary, for scale: the
     daemon's margin over this is caches + dedup alone *)
  let n_inproc = 32 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n_inproc do
    Cas_compiler.Cache.clear_memory ();
    match Daemon.exec cfg (certify (Load.sample cdf cold_rng)) with
    | Ok _ -> ()
    | Error e -> Fmt.failwith "serve: cold certify failed: %s" e
  done;
  let inproc_s = (Unix.gettimeofday () -. t0) /. float_of_int n_inproc in
  Cas_compiler.Cache.clear_memory ();
  (* --- the daemon, in-process (its accept loop on its own thread) --- *)
  let start cfg =
    match Daemon.create cfg with
    | Error e -> Fmt.failwith "serve: %s" e
    | Ok d ->
      let th = Thread.create (fun () -> ignore (Daemon.run d)) () in
      (match Client.wait_ready ~socket:cfg.Daemon.socket () with
      | Ok () -> ()
      | Error e -> Fmt.failwith "serve: %s" e);
      (d, th)
  in
  let sched_gauge ~socket name =
    let r =
      Client.with_connection ~socket (fun c ->
          Client.request c Protocol.Metrics)
    in
    match r with
    | Ok (Ok { Protocol.payload; _ }) -> (
      match
        Cas_diag.Json.member name (Cas_diag.Json.member "scheduler" payload)
      with
      | Cas_diag.Json.Int n -> n
      | _ | (exception Cas_diag.Json.Decode_error _) ->
        Fmt.failwith "serve: metrics reply lacks scheduler.%s" name)
    | _ -> Fmt.failwith "serve: metrics request failed"
  in
  let shutdown ~socket th =
    (match
       Client.with_connection ~socket (fun c ->
           Client.request c Protocol.Shutdown)
     with
    | Ok (Ok { Protocol.status = Protocol.Sok; _ }) -> ()
    | _ -> Fmt.failwith "serve: shutdown request failed");
    Thread.join th
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "cascd-bench-%d.sock" (Unix.getpid ()))
  in
  let _d, th = start { cfg with Daemon.socket } in
  (* warm-up: certify every module once so the fleet below measures the
     steady state a long-lived daemon actually serves *)
  (match
     Client.with_connection ~socket (fun c ->
         for rank = 0 to n_mods - 1 do
           match Client.request c (certify rank) with
           | Ok { Protocol.status = Protocol.Sok; _ } -> ()
           | _ -> Fmt.failwith "serve: warm-up certify %d failed" rank
         done)
   with
  | Ok () -> ()
  | Error e -> Fmt.failwith "serve: warm-up connection failed: %s" e);
  Cas_compiler.Cache.reset_stats ();
  (* --- the Zipf fleet --- *)
  let clients = 120 and requests = 20 in
  let kind_of ~client ~request =
    let r = Load.rng ~seed:((client * 1009) + request) in
    certify (Load.sample cdf r)
  in
  let o = Load.run_clients ~socket ~clients ~requests ~kind_of in
  let executed = sched_gauge ~socket "executed" in
  let coalesced = sched_gauge ~socket "coalesced" in
  let hits, misses =
    List.fold_left
      (fun (h, m) (s : Cas_compiler.Cache.stats) ->
        (h + s.Cas_compiler.Cache.hits, m + s.Cas_compiler.Cache.misses))
      (0, 0)
      (Cas_compiler.Cache.global_stats ())
  in
  shutdown ~socket th;
  let warm_s = o.Load.wall_ns /. 1e9 in
  let warm_rps = float_of_int o.Load.ok /. warm_s in
  let pct q = float_of_int (Load.percentile o.Load.latencies_us q) in
  let hit_rate =
    if hits + misses = 0 then 100.
    else 100. *. float_of_int hits /. float_of_int (hits + misses)
  in
  Fmt.pr "%d clients x %d certify requests over %d modules (zipf s=1.1):@."
    clients requests n_mods;
  Fmt.pr "  %-32s %a  (best %a)@." "cold per-request (casc process)" pp_ns
    (cold_mean_s *. 1e9) pp_ns (cold_best_s *. 1e9);
  Fmt.pr "  %-32s %a@." "cold in-process certify" pp_ns (inproc_s *. 1e9);
  Fmt.pr "  %-32s %8.0f rps@." "cold throughput (best spawn)" cold_rps;
  Fmt.pr "  %-32s %8.0f rps  (%.1fx cold)@." "warm daemon throughput" warm_rps
    (warm_rps /. cold_rps);
  Fmt.pr "  %-32s %8.0f / %.0f / %.0f us@." "latency p50 / p95 / p99"
    (pct 0.50) (pct 0.95) (pct 0.99);
  Fmt.pr "  %-32s %8d ok, %d overloaded, %d errors@." "responses" o.Load.ok
    (o.Load.overloaded + o.Load.draining)
    o.Load.errors;
  Fmt.pr "  %-32s %8d executed, %d coalesced@." "scheduler" executed coalesced;
  Fmt.pr "  %-32s %7.1f%%@." "cache hit rate (memory tier)" hit_rate;
  record "clients" (float_of_int clients);
  record "requests" (float_of_int o.Load.sent);
  record "cold_rps" cold_rps;
  record "cold_inproc_us" (inproc_s *. 1e6);
  record "warm_rps" warm_rps;
  record "speedup" (warm_rps /. cold_rps);
  record "p50_us" (pct 0.50);
  record "p95_us" (pct 0.95);
  record "p99_us" (pct 0.99);
  record "ok" (float_of_int o.Load.ok);
  record "overloaded" (float_of_int (o.Load.overloaded + o.Load.draining));
  record "errors" (float_of_int o.Load.errors);
  record "executed" (float_of_int executed);
  record "coalesced" (float_of_int coalesced);
  record "cache_hit_rate_pct" hit_rate;
  (* --- burst: N identical cold requests against a slowed daemon must
     share one execution (the delay widens the in-flight window so the
     coalescing is deterministic, as in the serve tests) --- *)
  let socket2 = socket ^ ".burst" in
  let _d2, th2 =
    start { cfg with Daemon.socket = socket2; Daemon.delay = 0.2 }
  in
  let burst_n = 16 in
  let burst_kind = certify n_mods (* a 25th module, never certified *) in
  let burst_ok = Atomic.make 0 in
  let burst_threads =
    List.init burst_n (fun _ ->
        Thread.create
          (fun () ->
            match
              Client.with_connection ~socket:socket2 (fun c ->
                  Client.request c burst_kind)
            with
            | Ok (Ok { Protocol.status = Protocol.Sok; _ }) ->
              Atomic.incr burst_ok
            | _ -> ())
          ())
  in
  List.iter Thread.join burst_threads;
  let burst_coalesced = sched_gauge ~socket:socket2 "coalesced" in
  let burst_executed = sched_gauge ~socket:socket2 "executed" in
  shutdown ~socket:socket2 th2;
  Fmt.pr "  %-32s %8d identical: %d ok, %d executed, %d coalesced@." "burst"
    burst_n (Atomic.get burst_ok) burst_executed burst_coalesced;
  record "burst_n" (float_of_int burst_n);
  record "burst_ok" (float_of_int (Atomic.get burst_ok));
  record "burst_executed" (float_of_int burst_executed);
  record "burst_coalesced" (float_of_int burst_coalesced);
  (* --- gates --- *)
  if o.Load.errors > 0 then
    Fmt.failwith "serve: %d transport/protocol errors under load"
      o.Load.errors;
  if Atomic.get burst_ok <> burst_n then
    Fmt.failwith "serve: burst lost responses: %d/%d ok"
      (Atomic.get burst_ok) burst_n;
  if warm_rps < 5. *. cold_rps then
    Fmt.failwith
      "serve: warm daemon only %.1fx the cold per-request path (gate: 5x)"
      (warm_rps /. cold_rps);
  if 2 * burst_coalesced < burst_n - 1 then
    Fmt.failwith
      "serve: burst coalesced %d of %d duplicates (gate: at least half)"
      burst_coalesced (burst_n - 1);
  Fmt.pr "  gate: ok (>=5x cold, >=%d/%d duplicates coalesced)@."
    ((burst_n - 1 + 1) / 2)
    (burst_n - 1)

(* ------------------------------------------------------------------ *)
(* --baseline FILE: regression gate against committed numbers           *)
(* ------------------------------------------------------------------ *)

(* line-oriented field scan of our own fixed --json output format (the
   repo's [Cas_diag.Json] parser is integer-only by design) *)
let find_field line key =
  let pat = Fmt.str "\"%s\": " key in
  match
    let plen = String.length pat in
    let rec at i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else at (i + 1)
    in
    at 0
  with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length line
      && not (List.mem line.[!stop] [ ','; '}'; '\n' ])
    do
      incr stop
    done;
    Some (String.sub line start (!stop - start))

let unquote s =
  if String.length s >= 2 then String.sub s 1 (String.length s - 2) else s

(** Extract (name, ns_per_run) rows from a previous [--json] dump. *)
let read_baseline path : (string * float) list =
  let ic = open_in path in
  let rows = ref [] in
  (* [name] and [ns_per_run] may sit on the same line (our writer) or on
     separate lines (a reformatted file, e.g. via jq) -- carry the last
     seen name across lines and pair it with the next ns_per_run *)
  let pending = ref None in
  (try
     while true do
       let line = input_line ic in
       (match find_field line "name" with
       | Some name when String.length name >= 2 -> pending := Some (unquote name)
       | _ -> ());
       match (!pending, find_field line "ns_per_run") with
       | Some name, Some ns ->
         rows := (name, float_of_string (String.trim ns)) :: !rows;
         pending := None
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(** Extract (program, engine, worlds) rows from the "worlds" section of
    a previous [--json] dump. *)
let read_baseline_worlds path : (string * string * int) list =
  let ic = open_in path in
  let rows = ref [] in
  let prog = ref None and eng = ref None in
  (try
     while true do
       let line = input_line ic in
       (match find_field line "program" with
       | Some p when String.length p >= 2 -> prog := Some (unquote p)
       | _ -> ());
       (match find_field line "engine" with
       | Some e when String.length e >= 2 -> eng := Some (unquote e)
       | _ -> ());
       match (!prog, !eng, find_field line "worlds") with
       | Some p, Some e, Some w -> (
         (* the "worlds" section header matches the key too; skip it *)
         match int_of_string_opt (String.trim w) with
         | Some n ->
           rows := (p, e, n) :: !rows;
           prog := None;
           eng := None
         | None -> ())
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* fuzz — differential campaign throughput                             *)
(* ------------------------------------------------------------------ *)

(** A small fixed-seed [Cas_fuzz] campaign per language: programs/s
    through the full oracle stack, and the bucket tallies. Not part of
    the baseline-gated explore set — campaign cost is dominated by
    whatever the generator happens to draw, so it gates in CI by bucket
    counts (fuzz-smoke), not by wall clock. *)
let fuzz_section () =
  Fmt.pr "@.=== FUZZ — differential campaign throughput ===@.";
  let count = 40 in
  List.iter
    (fun lang ->
      let name = Cas_fuzz.Gen.lang_to_string lang in
      let t0 = Unix.gettimeofday () in
      let rep =
        Cas_fuzz.Driver.run ~size:8 ~budget:20_000 ~seed:1 ~count lang
      in
      let dt = Unix.gettimeofday () -. t0 in
      let open Cas_fuzz.Driver in
      Fmt.pr "  %-8s %3d programs in %6.2fs (%5.1f/s)  %a@." name count dt
        (float_of_int count /. dt)
        pp_report rep;
      json_fuzz :=
        List.rev_append
          [
            (Fmt.str "%s programs_per_s" name, float_of_int count /. dt);
            (Fmt.str "%s agree" name, float_of_int rep.r_agree);
            (Fmt.str "%s drf" name, float_of_int rep.r_drf);
            (Fmt.str "%s racy" name, float_of_int rep.r_racy);
            ( Fmt.str "%s verdict_divergence" name,
              float_of_int rep.r_verdict_div );
            ( Fmt.str "%s world_count_divergence" name,
              float_of_int rep.r_world_div );
            (Fmt.str "%s crash" name, float_of_int rep.r_crash);
            (Fmt.str "%s timeout" name, float_of_int rep.r_timeout);
          ]
          !json_fuzz;
      if not (clean rep) then begin
        Fmt.epr "fuzz: unexplained divergence in the %s campaign@." name;
        exit 1
      end)
    [ Cas_fuzz.Gen.Clight; Cas_fuzz.Gen.Cimp ]

(** Compare the exploration sections of this run against the baseline;
    fail (exit 1) on any regression beyond the tolerance band. Entries
    missing on either side are reported but never fail the gate (new
    benches must be able to land together with their first baseline). *)
let check_baseline ~path ~tolerance =
  let base = read_baseline path in
  let is_explore n = String.length n >= 8 && String.sub n 0 8 = "explore " in
  (* a baseline that parses to zero exploration entries means the gate
     would silently pass on anything -- fail loudly instead *)
  if not (List.exists (fun (n, _) -> is_explore n) base) then begin
    Fmt.epr "bench-regress: no \"explore\" entries parsed from %s@." path;
    exit 1
  end;
  let current =
    List.filter (fun (n, _, _) -> is_explore n) (List.rev !json_benchmarks)
  in
  (* the symmetric failure: a run that produced no gated rows (a typo'd
     --only, a section that silently bailed) must not pass either *)
  if current = [] then begin
    Fmt.epr
      "bench-regress: this run produced no \"explore\" rows to gate (run \
       with --only explore or no --only)@.";
    exit 1
  end;
  Fmt.pr "@.--- baseline comparison (%s, tolerance %.0f%%) ---@." path
    tolerance;
  Fmt.pr "  %-40s %11s %11s %8s@." "section" "baseline" "now" "speedup";
  let regressed = ref [] in
  List.iter
    (fun (name, _, now_ns) ->
      match List.assoc_opt name base with
      | None -> Fmt.pr "  %-40s %11s %a %8s@." name "(new)" pp_ns now_ns ""
      | Some base_ns ->
        let speedup = base_ns /. now_ns in
        let bad = now_ns > base_ns *. (1. +. (tolerance /. 100.)) in
        if bad then regressed := name :: !regressed;
        Fmt.pr "  %-40s %a %a %7.2fx%s@." name pp_ns base_ns pp_ns now_ns
          speedup
          (if bad then "  REGRESSION" else ""))
    current;
  List.iter
    (fun (name, _) ->
      if is_explore name && not (List.exists (fun (n, _, _) -> n = name) current)
      then Fmt.pr "  %-40s (in baseline, not rerun)@." name)
    base;
  if !regressed <> [] then begin
    Fmt.epr "@.bench-regress: %d section(s) regressed >%.0f%%: %a@."
      (List.length !regressed) tolerance
      Fmt.(list ~sep:comma string)
      !regressed;
    exit 1
  end;
  (* world-count gate: wall clock is noisy, world counts are exact. For
     every (program, engine) pair both sides measured, the reduction
     must never lose ground on the committed baseline. *)
  let base_worlds = read_baseline_worlds path in
  let cur_worlds = List.rev !json_worlds in
  let grew = ref [] in
  List.iter
    (fun (p, e, w) ->
      match
        List.find_opt (fun (bp, be, _) -> bp = p && be = e) base_worlds
      with
      | Some (_, _, bw) when w > bw ->
        grew := Fmt.str "%s/%s %d -> %d" p e bw w :: !grew
      | _ -> ())
    cur_worlds;
  if !grew <> [] then begin
    Fmt.epr "@.bench-regress: world counts grew over the baseline: %a@."
      Fmt.(list ~sep:comma string)
      !grew;
    exit 1
  end;
  if base_worlds <> [] && cur_worlds = [] then begin
    Fmt.epr
      "bench-regress: baseline has world counts but this run recorded none@.";
    exit 1
  end;
  Fmt.pr "  gate: ok (%d timing rows, %d world counts)@." (List.length current)
    (List.length cur_worlds)

(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let only =
    let rec find = function
      | "--only" :: s :: _ -> Some (String.split_on_char ',' s)
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let baseline =
    let rec find = function
      | "--baseline" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let tolerance =
    let rec find = function
      | "--tolerance" :: pct :: _ -> float_of_string pct
      | _ :: rest -> find rest
      | [] -> 25.
    in
    find argv
  in
  let cli_jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> Some (int_of_string n)
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let sections =
    [
      ("fig13", fig13);
      ("fig11", fig11);
      ("fig2", fig2);
      ("np", np_reduction);
      ("fig3", fig3);
      ("compile", compile_section);
      ("diag", diag);
      ("link", link_section);
      ("recert", recert_section);
      ("hotpath", hotpath);
      ("explore", explore_section ~jobs:cli_jobs);
      ("serve", serve_section);
      ("fuzz", fuzz_section);
    ]
  in
  Fmt.pr "CASCompCert reproduction — benchmark harness@.";
  Fmt.pr "(one section per paper figure/table; see EXPERIMENTS.md)@.";
  (match only with
  | None -> List.iter (fun (_, f) -> f ()) sections
  | Some names ->
    List.iter
      (fun s ->
        match List.assoc_opt s sections with
        | Some f -> f ()
        | None ->
          Fmt.epr "unknown section %S; known: %a@." s
            Fmt.(list ~sep:comma string)
            (List.map fst sections);
          exit 1)
      names);
  Option.iter write_json json_path;
  Option.iter (fun path -> check_baseline ~path ~tolerance) baseline;
  Fmt.pr "@.all benches done.@."
